"""Golden-stats parity: optimized hot paths are bit-identical to the seed.

``tests/data/golden_parity.json`` holds fingerprints captured from the
pre-optimization implementation: the full ``Stats`` counter dump, every
time series, the final working-memory and merged hierarchy images, and
the spec cache key, each hashed.  The optimized simulator must reproduce
every one of them exactly — a perf change that shifts any counter,
cycle count or memory byte is a semantics change, not an optimization.

Every cell runs twice: once on the serial reference ``Machine`` and once
on the slice-parallel engine (``sim_workers=2``), which must reproduce
the same fingerprints bit-for-bit — its determinism contract.  (The
``spec_key`` hash is only compared for the serial run: ``sim_workers``
deliberately joins the cache key, so the parallel spec hashes elsewhere.)

These are the heaviest tier-1 tests (many full small-scale runs); the
cells stay at scale 0.2 so the whole file runs in tens of seconds.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.harness.bench import run_fingerprint
from repro.harness.spec import RunSpec
from repro.sim.config import SystemConfig

FIXTURE = Path(__file__).parent / "data" / "golden_parity.json"

with FIXTURE.open() as fh:
    _CELLS = json.load(fh)["cells"]


def _cell_id(cell):
    cores = cell.get("cores")
    geometry = "" if cores is None else f"-{cores}c"
    if cell.get("batch_epoch_sync"):
        geometry += "-batched"
    if cell.get("nvm_profile", "local") != "local":
        geometry += f"-{cell['nvm_profile']}"
    return f"{cell['workload']}-{cell['scheme']}{geometry}"


def _cell_config(cell, sim_workers=1):
    """Geometry for a cell: default 16-core unless ``cores`` says else."""
    cores = cell.get("cores")
    profile = cell.get("nvm_profile", "local")
    if cores is None:
        if sim_workers == 1 and profile == "local":
            return None
        return SystemConfig(sim_workers=sim_workers, nvm_profile=profile)
    config = SystemConfig.scaled(
        cores, batch_epoch_sync=cell.get("batch_epoch_sync", False),
        nvm_profile=profile,
    )
    if sim_workers != 1:
        config = dataclasses.replace(config, sim_workers=sim_workers)
    return config


@pytest.mark.parametrize("sim_workers", [1, 2], ids=["serial", "workers2"])
@pytest.mark.parametrize("cell", _CELLS, ids=[_cell_id(c) for c in _CELLS])
def test_fingerprint_matches_seed(cell, sim_workers):
    spec = RunSpec(
        workload=cell["workload"],
        scheme=cell["scheme"],
        config=_cell_config(cell, sim_workers),
        scale=cell["scale"],
        seed=cell["seed"],
    )
    fingerprint = run_fingerprint(spec)
    expected = cell["fingerprint"]
    mismatched = {
        key: (expected[key], fingerprint.get(key))
        for key in expected
        if key != "spec_key" and fingerprint.get(key) != expected[key]
    }
    if sim_workers == 1:
        if fingerprint.get("spec_key") != expected["spec_key"]:
            mismatched["spec_key"] = (
                expected["spec_key"], fingerprint.get("spec_key")
            )
    assert not mismatched, (
        f"{cell['workload']}/{cell['scheme']} (sim_workers={sim_workers}) "
        f"diverged from the seed implementation: {mismatched}"
    )


def test_fixture_covers_all_pinned_schemes_and_three_workloads():
    pairs = {(c["workload"], c["scheme"]) for c in _CELLS}
    assert len(pairs) >= 10
    assert {s for _, s in pairs} == {
        "nvoverlay", "picl", "icl", "jass_adaptive", "msync_snapshot",
    }
    assert len({w for w, _ in pairs}) >= 3


def test_fixture_pins_the_cxl_device_profile():
    cxl = [c for c in _CELLS if c.get("nvm_profile") == "cxl"]
    assert cxl, "no CXL-profile cell in the fixture"
    # The CXL profile must actually change timing: its fingerprint may
    # not collide with the same cell on the local profile.
    for cell in cxl:
        twins = [
            c for c in _CELLS
            if c.get("nvm_profile", "local") == "local"
            and (c["workload"], c["scheme"], c.get("cores"))
            == (cell["workload"], cell["scheme"], cell.get("cores"))
        ]
        for twin in twins:
            assert twin["fingerprint"]["cycles"] != cell["fingerprint"]["cycles"]


def test_fixture_pins_scaled_geometries():
    """32- and 64-core fingerprints guard the scale-out refactors."""
    cores = {c.get("cores") for c in _CELLS}
    assert {None, 32, 64} <= cores
    for scale in (32, 64):
        schemes = {c["scheme"] for c in _CELLS if c.get("cores") == scale}
        assert schemes == {"nvoverlay", "picl"}
    assert any(c.get("batch_epoch_sync") for c in _CELLS)


def test_fingerprint_is_deterministic():
    spec = RunSpec(workload="uniform", scheme="nvoverlay", scale=0.05, seed=3)
    assert run_fingerprint(spec) == run_fingerprint(spec)
