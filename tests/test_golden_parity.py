"""Golden-stats parity: optimized hot paths are bit-identical to the seed.

``tests/data/golden_parity.json`` holds fingerprints captured from the
pre-optimization implementation: the full ``Stats`` counter dump, every
time series, the final working-memory and merged hierarchy images, and
the spec cache key, each hashed.  The optimized simulator must reproduce
every one of them exactly — a perf change that shifts any counter,
cycle count or memory byte is a semantics change, not an optimization.

These are the heaviest tier-1 tests (six full small-scale runs); the
cells stay at scale 0.2 so the whole file runs in a few seconds.
"""

import json
from pathlib import Path

import pytest

from repro.harness.bench import run_fingerprint
from repro.harness.spec import RunSpec

FIXTURE = Path(__file__).parent / "data" / "golden_parity.json"

with FIXTURE.open() as fh:
    _CELLS = json.load(fh)["cells"]


@pytest.mark.parametrize(
    "cell", _CELLS, ids=[f"{c['workload']}-{c['scheme']}" for c in _CELLS]
)
def test_fingerprint_matches_seed(cell):
    spec = RunSpec(
        workload=cell["workload"],
        scheme=cell["scheme"],
        scale=cell["scale"],
        seed=cell["seed"],
    )
    fingerprint = run_fingerprint(spec)
    expected = cell["fingerprint"]
    mismatched = {
        key: (expected[key], fingerprint.get(key))
        for key in expected
        if fingerprint.get(key) != expected[key]
    }
    assert not mismatched, (
        f"{cell['workload']}/{cell['scheme']} diverged from the seed "
        f"implementation: {mismatched}"
    )


def test_fixture_covers_both_schemes_and_three_workloads():
    pairs = {(c["workload"], c["scheme"]) for c in _CELLS}
    assert len(pairs) >= 6
    assert {s for _, s in pairs} == {"nvoverlay", "picl"}
    assert len({w for w, _ in pairs}) >= 3


def test_fingerprint_is_deterministic():
    spec = RunSpec(workload="uniform", scheme="nvoverlay", scale=0.05, seed=3)
    assert run_fingerprint(spec) == run_fingerprint(spec)
