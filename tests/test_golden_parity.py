"""Golden-stats parity: optimized hot paths are bit-identical to the seed.

``tests/data/golden_parity.json`` holds fingerprints captured from the
pre-optimization implementation: the full ``Stats`` counter dump, every
time series, the final working-memory and merged hierarchy images, and
the spec cache key, each hashed.  The optimized simulator must reproduce
every one of them exactly — a perf change that shifts any counter,
cycle count or memory byte is a semantics change, not an optimization.

These are the heaviest tier-1 tests (six full small-scale runs); the
cells stay at scale 0.2 so the whole file runs in a few seconds.
"""

import json
from pathlib import Path

import pytest

from repro.harness.bench import run_fingerprint
from repro.harness.spec import RunSpec
from repro.sim.config import SystemConfig

FIXTURE = Path(__file__).parent / "data" / "golden_parity.json"

with FIXTURE.open() as fh:
    _CELLS = json.load(fh)["cells"]


def _cell_id(cell):
    cores = cell.get("cores")
    geometry = "" if cores is None else f"-{cores}c"
    if cell.get("batch_epoch_sync"):
        geometry += "-batched"
    return f"{cell['workload']}-{cell['scheme']}{geometry}"


def _cell_config(cell):
    """Geometry for a cell: default 16-core unless ``cores`` says else."""
    cores = cell.get("cores")
    if cores is None:
        return None
    return SystemConfig.scaled(
        cores, batch_epoch_sync=cell.get("batch_epoch_sync", False)
    )


@pytest.mark.parametrize("cell", _CELLS, ids=[_cell_id(c) for c in _CELLS])
def test_fingerprint_matches_seed(cell):
    spec = RunSpec(
        workload=cell["workload"],
        scheme=cell["scheme"],
        config=_cell_config(cell),
        scale=cell["scale"],
        seed=cell["seed"],
    )
    fingerprint = run_fingerprint(spec)
    expected = cell["fingerprint"]
    mismatched = {
        key: (expected[key], fingerprint.get(key))
        for key in expected
        if fingerprint.get(key) != expected[key]
    }
    assert not mismatched, (
        f"{cell['workload']}/{cell['scheme']} diverged from the seed "
        f"implementation: {mismatched}"
    )


def test_fixture_covers_both_schemes_and_three_workloads():
    pairs = {(c["workload"], c["scheme"]) for c in _CELLS}
    assert len(pairs) >= 6
    assert {s for _, s in pairs} == {"nvoverlay", "picl"}
    assert len({w for w, _ in pairs}) >= 3


def test_fixture_pins_scaled_geometries():
    """32- and 64-core fingerprints guard the scale-out refactors."""
    cores = {c.get("cores") for c in _CELLS}
    assert {None, 32, 64} <= cores
    for scale in (32, 64):
        schemes = {c["scheme"] for c in _CELLS if c.get("cores") == scale}
        assert schemes == {"nvoverlay", "picl"}
    assert any(c.get("batch_epoch_sync") for c in _CELLS)


def test_fingerprint_is_deterministic():
    spec = RunSpec(workload="uniform", scheme="nvoverlay", scale=0.05, seed=3)
    assert run_fingerprint(spec) == run_fingerprint(spec)
