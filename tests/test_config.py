"""Tests for repro.sim.config: geometry, epoch policies, scaling."""

import pytest

from repro.sim.config import (
    BurstyEpochPolicy,
    CacheGeometry,
    FixedEpochPolicy,
    SystemConfig,
)


class TestCacheGeometry:
    def test_basic_derivations(self):
        geometry = CacheGeometry(8192, 8, 8)
        assert geometry.num_lines == 128
        assert geometry.num_sets == 16

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 8, 4)

    def test_direct_mapped(self):
        geometry = CacheGeometry(1024, 1, 1)
        assert geometry.num_sets == geometry.num_lines == 16


class TestSystemConfig:
    def test_default_is_16_cores_8_vds(self):
        config = SystemConfig()
        assert config.num_cores == 16
        assert config.num_vds == 8

    def test_cores_must_divide_into_vds(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=10, cores_per_vd=4)

    def test_llc_slice_geometry_divides_capacity(self):
        config = SystemConfig()
        slice_geometry = config.llc_slice_geometry
        assert (
            slice_geometry.size_bytes * config.llc_slices
            == config.llc_geometry.size_bytes
        )

    def test_paper_scale_matches_table2(self):
        config = SystemConfig.paper_scale()
        assert config.l1_geometry.size_bytes == 32 * 1024
        assert config.l1_geometry.latency == 4
        assert config.l2_geometry.size_bytes == 256 * 1024
        assert config.l2_geometry.latency == 8
        assert config.llc_geometry.size_bytes == 32 * 1024 * 1024
        assert config.llc_geometry.ways == 16
        assert config.llc_geometry.latency == 30
        assert config.nvm_banks == 16
        assert config.dram_controllers == 4
        assert config.epoch_size_stores == 1_000_000

    def test_with_changes_is_functional(self):
        config = SystemConfig()
        other = config.with_changes(epoch_size_stores=42)
        assert other.epoch_size_stores == 42
        assert config.epoch_size_stores != 42

    def test_vd_epoch_size_scales_with_vd_share(self):
        config = SystemConfig(num_cores=16, cores_per_vd=2, epoch_size_stores=8000)
        assert config.vd_epoch_size_stores == 1000

    def test_vd_epoch_size_never_zero(self):
        config = SystemConfig(num_cores=16, cores_per_vd=2, epoch_size_stores=3)
        assert config.vd_epoch_size_stores == 1

    def test_epoch_bits_bounds(self):
        with pytest.raises(ValueError):
            SystemConfig(epoch_bits=2)
        with pytest.raises(ValueError):
            SystemConfig(epoch_bits=64)


class TestEpochPolicies:
    def test_fixed_policy(self):
        policy = FixedEpochPolicy(500)
        assert policy.size_at(0) == 500
        assert policy.size_at(10**9) == 500

    def test_bursty_policy_windows(self):
        policy = BurstyEpochPolicy(
            base_size=1000, bursts=((100, 200, 10), (500, 600, 50))
        )
        assert policy.size_at(0) == 1000
        assert policy.size_at(150) == 10
        assert policy.size_at(200) == 1000
        assert policy.size_at(550) == 50
        assert policy.size_at(10_000) == 1000

    def test_config_uses_policy(self):
        policy = BurstyEpochPolicy(base_size=1000, bursts=((0, 100, 7),))
        config = SystemConfig(epoch_policy=policy, epoch_size_stores=9999)
        assert config.epoch_size_at(50) == 7
        assert config.epoch_size_at(100) == 1000

    def test_config_without_policy_uses_fixed_size(self):
        config = SystemConfig(epoch_size_stores=1234)
        assert config.epoch_size_at(0) == 1234
        assert config.epoch_size_at(10**7) == 1234

    def test_vd_epoch_size_under_policy(self):
        policy = BurstyEpochPolicy(base_size=8000, bursts=((0, 1000, 80),))
        config = SystemConfig(
            num_cores=16, cores_per_vd=2, epoch_policy=policy
        )
        # Inside the burst window: 80 global stores -> 10 per VD.
        assert config.vd_epoch_size_at(0) == 10
        # Outside: 8000 -> 1000 per VD.
        assert config.vd_epoch_size_at(10_000) == 1000
