"""`repro bench bisect`: attribute a regression to an entry/commit range.

Runs entirely on the committed synthetic fixture trajectory (10 entries,
a 12 % regression injected at index 6) plus in-memory variants — no
simulator, part of the fast CI detector-unit job.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.bench import bisect_trajectory, load_trajectory
from repro.harness.bench import bisect as bisect_mod

FIXTURE = (Path(__file__).parent / "data" / "bench_profiles"
           / "bisect_trajectory.json")
SCENARIO = "uniform_nvoverlay"
ENV = "fixture-env"


@pytest.fixture()
def trajectory():
    return load_trajectory(FIXTURE)


class TestAttribution:
    def test_attributes_to_the_injected_entry(self, trajectory):
        expected = trajectory["first_bad_index"]
        report = bisect_trajectory(trajectory, SCENARIO, env=ENV)
        assert report.status == "regression"
        assert report.regressed
        assert report.first_bad["index"] == expected
        assert report.first_bad["commit"] == f"c{expected}"
        assert report.last_good["index"] == expected - 1
        assert report.last_good["commit"] == f"c{expected - 1}"
        assert report.median_ratio < 0.95

    def test_probes_are_logarithmic_not_linear(self, trajectory):
        """Binary search: 10 entries need ~log2 probes, not 10."""
        report = bisect_trajectory(trajectory, SCENARIO, env=ENV)
        assert 1 < len(report.steps) <= 5

    def test_clean_trajectory_reports_clean(self, trajectory):
        clean = copy.deepcopy(trajectory)
        good = clean["entries"][:clean["first_bad_index"]]
        clean["entries"] = good
        report = bisect_trajectory(clean, SCENARIO, env=ENV)
        assert report.status == "clean"
        assert not report.regressed
        assert report.first_bad is None
        assert report.last_good["index"] == len(good) - 1

    def test_regression_at_first_entry_after_good(self, trajectory):
        """Degenerate range: good entry, then immediately bad."""
        narrow = copy.deepcopy(trajectory)
        first_bad = narrow["first_bad_index"]
        narrow["entries"] = [narrow["entries"][first_bad - 1],
                             narrow["entries"][first_bad]]
        report = bisect_trajectory(narrow, SCENARIO, env=ENV)
        assert report.status == "regression"
        assert report.first_bad["commit"] == f"c{first_bad}"
        assert report.last_good["commit"] == f"c{first_bad - 1}"

    def test_env_mismatch_is_insufficient(self, trajectory):
        report = bisect_trajectory(trajectory, SCENARIO, env="other-env")
        assert report.status == "insufficient"
        assert report.considered == []

    def test_quick_filter_excludes_full_entries(self, trajectory):
        report = bisect_trajectory(trajectory, SCENARIO, env=ENV, quick=True)
        assert report.status == "insufficient"  # fixtures are quick=False

    def test_unknown_detector_raises(self, trajectory):
        with pytest.raises(KeyError, match="unknown detector"):
            bisect_trajectory(trajectory, SCENARIO, env=ENV,
                              detectors=["nope"])

    def test_report_is_machine_readable(self, trajectory):
        report = bisect_trajectory(trajectory, SCENARIO, env=ENV)
        payload = report.to_dict()
        json.dumps(payload)  # JSON-safe end to end
        assert payload["status"] == "regression"
        assert payload["first_bad"]["commit"]
        assert payload["detectors"] == sorted(payload["detectors"])
        assert all({"index", "label", "commit", "regressed", "check"}
                   <= set(step) for step in payload["steps"])


class TestRecollectHook:
    def test_hook_refreshes_sample_less_entries(self, trajectory):
        """Entries stripped of samples get re-collected through the
        pluggable hook (canned here; git-worktree in production)."""
        stripped = copy.deepcopy(trajectory)
        canned = {}
        for entry in stripped["entries"]:
            result = entry["results"][SCENARIO]
            canned[entry["commit"]] = result["samples_ops_per_sec"]
            result["samples_ops_per_sec"] = []
            result["all_seconds"] = []
            result["ops"] = 0
        calls = []

        def hook(entry, scenario):
            calls.append((entry["commit"], scenario))
            return canned[entry["commit"]]

        report = bisect_trajectory(stripped, SCENARIO, env=ENV,
                                   recollect=hook)
        assert report.status == "regression"
        assert report.first_bad["index"] == trajectory["first_bad_index"]
        assert len(calls) == len(stripped["entries"])
        assert all(s == SCENARIO for _, s in calls)

    def test_hook_declining_skips_entry(self, trajectory):
        stripped = copy.deepcopy(trajectory)
        bad_index = stripped["first_bad_index"]
        target = stripped["entries"][bad_index]["results"][SCENARIO]
        target["samples_ops_per_sec"] = []
        target["all_seconds"] = []
        target["ops"] = 0
        report = bisect_trajectory(stripped, SCENARIO, env=ENV,
                                   recollect=lambda entry, scenario: None)
        # The stripped entry is skipped; attribution shifts to the next
        # regressed entry, and the skip is reported.
        assert report.skipped == [bad_index]
        assert report.status == "regression"
        assert report.first_bad["index"] == bad_index + 1

    def test_without_hook_sample_less_entries_are_skipped(self, trajectory):
        stripped = copy.deepcopy(trajectory)
        target = stripped["entries"][0]["results"][SCENARIO]
        target["samples_ops_per_sec"] = []
        target["all_seconds"] = []
        target["ops"] = 0
        report = bisect_trajectory(stripped, SCENARIO, env=ENV)
        assert report.skipped == [0]
        assert 0 not in report.considered

    def test_git_hook_returns_none_without_commit(self):
        hook = bisect_mod.make_git_recollect_hook(quick=True, repeats=1)
        assert hook({"label": "no commit recorded"}, SCENARIO) is None


class TestCli:
    def test_bisect_json_verdict(self, capsys):
        argv = ["bench", "bisect", "--scenario", SCENARIO, "--env", ENV,
                "--any-mode", "--trajectory", str(FIXTURE), "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "regression"
        assert payload["first_bad"]["commit"] == "c6"
        assert payload["last_good"]["commit"] == "c5"

    def test_bisect_human_output(self, capsys):
        argv = ["bench", "bisect", "--scenario", SCENARIO, "--env", ENV,
                "--any-mode", "--trajectory", str(FIXTURE)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "verdict: regression" in out
        assert "c6" in out and "probe entry" in out

    def test_bisect_insufficient_exits_1(self, capsys):
        argv = ["bench", "bisect", "--scenario", SCENARIO,
                "--env", "nothing-here", "--any-mode",
                "--trajectory", str(FIXTURE)]
        assert main(argv) == 1
        assert "insufficient" in capsys.readouterr().out

    def test_bisect_unknown_detector_exits_2(self, capsys):
        argv = ["bench", "bisect", "--scenario", SCENARIO, "--env", ENV,
                "--any-mode", "--trajectory", str(FIXTURE),
                "--detectors", "nope"]
        assert main(argv) == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_fixture_generator_is_deterministic(self, tmp_path):
        """The committed fixtures match what the generator produces."""
        import importlib.util

        gen_path = FIXTURE.parent / "_generate.py"
        spec = importlib.util.spec_from_file_location("_generate", gen_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.make_bisect_trajectory() == json.loads(
            FIXTURE.read_text())
        assert module.make_fixtures() == json.loads(
            (FIXTURE.parent / "fixtures.json").read_text())
