"""Tests for the OMC and its cluster: ingest, merge, rec-epoch, GC."""

import pytest

from repro.core import OMC, OMCCluster
from repro.sim import NVM, Stats, SystemConfig


def make_omc(**kwargs):
    stats = Stats()
    nvm = NVM(SystemConfig(), stats)
    kwargs.setdefault("pool_pages", 1024)
    return OMC(0, nvm, stats, **kwargs)


def make_cluster(num_omcs=2, num_vds=2, **kwargs):
    stats = Stats()
    nvm = NVM(SystemConfig(), stats)
    kwargs.setdefault("pool_pages", 1024)
    return OMCCluster(num_omcs, num_vds, nvm, stats, **kwargs)


class TestVersionIngest:
    def test_insert_creates_epoch_table(self):
        omc = make_omc()
        omc.insert_version(line=5, oid=2, data=42, now=0)
        assert 2 in omc.tables
        assert omc.tables[2].lookup(5) is not None

    def test_insert_counts_nvm_data_bytes(self):
        omc = make_omc()
        omc.insert_version(5, 2, 42, 0)
        assert omc.nvm.bytes_written("data") == 64

    def test_redundant_insert_same_epoch_replaces(self):
        omc = make_omc()
        omc.insert_version(5, 2, 41, 0)
        omc.insert_version(5, 2, 42, 0)
        assert len(omc.tables[2]) == 1
        assert omc.stats.get("omc0.redundant_versions") == 1

    def test_insert_after_merge_raises(self):
        omc = make_omc()
        omc.insert_version(5, 2, 42, 0)
        omc.merge_through(3, 0)
        with pytest.raises(RuntimeError):
            omc.insert_version(6, 3, 43, 0)

    def test_different_epochs_kept_separately(self):
        omc = make_omc()
        omc.insert_version(5, 1, 10, 0)
        omc.insert_version(5, 2, 20, 0)
        assert omc.time_travel_read(5, 1) == (10, 1)
        assert omc.time_travel_read(5, 2) == (20, 2)


class TestMerge:
    def test_master_reflects_newest_merged(self):
        omc = make_omc()
        omc.insert_version(5, 1, 10, 0)
        omc.insert_version(5, 2, 20, 0)
        omc.merge_through(2, 0)
        assert omc.read_master(5) == 20

    def test_merge_ascending_order(self):
        omc = make_omc()
        omc.insert_version(5, 2, 20, 0)
        omc.insert_version(5, 1, 10, 0)  # inserted out of order
        omc.merge_through(2, 0)
        assert omc.read_master(5) == 20  # higher epoch still wins

    def test_merge_is_idempotent(self):
        omc = make_omc()
        omc.insert_version(5, 1, 10, 0)
        first = omc.merge_through(1, 0)
        second = omc.merge_through(1, 0)
        assert first == 1 and second == 0

    def test_merge_counts_metadata_writes(self):
        omc = make_omc()
        omc.insert_version(5, 1, 10, 0)
        omc.merge_through(1, 0)
        assert omc.nvm.bytes_written("metadata") > 0

    def test_partial_merge_leaves_later_epochs(self):
        omc = make_omc()
        omc.insert_version(5, 1, 10, 0)
        omc.insert_version(6, 3, 30, 0)
        omc.merge_through(2, 0)
        assert omc.read_master(5) == 10
        assert omc.read_master(6) is None

    def test_merge_without_retention_frees_tables(self):
        omc = make_omc(retain_epoch_tables=False)
        omc.insert_version(5, 1, 10, 0)
        omc.merge_through(1, 0)
        assert 1 not in omc.tables
        assert omc.read_master(5) == 10  # data still reachable via master

    def test_superseded_version_storage_reclaimed(self):
        omc = make_omc(retain_epoch_tables=False)
        for epoch in range(1, 40):
            for line in range(64):
                omc.insert_version(line, epoch, epoch * 100 + line, 0)
            omc.merge_through(epoch, 0)
        # Only the newest epoch's sub-pages should still be allocated.
        assert omc.pool.pages_in_use() <= 4


class TestClusterRecEpoch:
    def test_initial_rec_epoch_zero(self):
        assert make_cluster().rec_epoch == 0

    def test_rec_epoch_is_min_minus_one(self):
        cluster = make_cluster(num_vds=2)
        cluster.update_min_ver(0, 5, 0)
        assert cluster.rec_epoch == 0  # vd1 still at 1
        cluster.update_min_ver(1, 3, 0)
        assert cluster.rec_epoch == 2

    def test_rec_epoch_never_regresses(self):
        cluster = make_cluster(num_vds=1)
        cluster.update_min_ver(0, 5, 0)
        assert cluster.rec_epoch == 4
        cluster.update_min_ver(0, 4, 0)
        assert cluster.rec_epoch == 4

    def test_advance_merges_all_omcs(self):
        cluster = make_cluster(num_omcs=2, num_vds=1)
        cluster.insert_version(5, 1, 10, 0)  # lands on one OMC by region
        cluster.insert_version((1 << 18) + 5, 1, 20, 0)  # the other
        cluster.update_min_ver(0, 2, 0)
        _epoch, image = cluster.recover()
        assert image == {5: 10, (1 << 18) + 5: 20}

    def test_lower_min_ver_blocks_advance(self):
        cluster = make_cluster(num_vds=2)
        cluster.update_min_ver(0, 10, 0)
        cluster.lower_min_ver(1, 3)
        cluster.update_min_ver(0, 12, 0)
        assert cluster.rec_epoch <= 2

    def test_lower_min_ver_only_lowers(self):
        cluster = make_cluster(num_vds=1)
        cluster.update_min_ver(0, 5, 0)
        cluster.lower_min_ver(0, 9)
        assert cluster.min_vers[0] == 5

    def test_rec_epoch_persisted_to_nvm(self):
        cluster = make_cluster(num_vds=1)
        before = cluster.nvm.bytes_written("metadata")
        cluster.update_min_ver(0, 5, 0)
        assert cluster.nvm.bytes_written("metadata") > before


class TestClusterRecovery:
    def test_recover_returns_epoch_and_image(self):
        cluster = make_cluster(num_vds=1)
        cluster.insert_version(5, 1, 11, 0)
        cluster.insert_version(5, 2, 22, 0)
        cluster.update_min_ver(0, 2, 0)  # rec = 1
        epoch, image = cluster.recover()
        assert epoch == 1
        assert image[5] == 11  # epoch-2 version not merged yet

    def test_context_recovery(self):
        cluster = make_cluster(num_vds=1)
        cluster.record_context(0, 1)
        cluster.record_context(0, 4)
        cluster.update_min_ver(0, 4, 0)  # rec = 3
        assert cluster.recovered_context_epoch(0) == 1
        cluster.update_min_ver(0, 6, 0)  # rec = 5
        assert cluster.recovered_context_epoch(0) == 4

    def test_snapshot_image_fall_through(self):
        cluster = make_cluster(num_vds=1)
        cluster.insert_version(5, 1, 11, 0)
        cluster.insert_version(6, 2, 22, 0)
        image = cluster.snapshot_image(2)
        assert image == {5: 11, 6: 22}
        image1 = cluster.snapshot_image(1)
        assert image1 == {5: 11}

    def test_time_travel_read_routes_by_region(self):
        cluster = make_cluster(num_omcs=2, num_vds=1)
        line = (1 << 18) * 3 + 7
        cluster.insert_version(line, 1, 99, 0)
        assert cluster.time_travel_read(line, 1) == (99, 1)
        assert cluster.time_travel_read(line + 1, 1) is None


class TestColdRestart:
    def _populated_cluster(self):
        cluster = make_cluster(num_omcs=2, num_vds=1)
        for epoch in (1, 2, 3):
            for line in range(16):
                cluster.insert_version(line, epoch, epoch * 100 + line, 0)
            cluster.insert_version((1 << 18) + epoch, epoch, 7000 + epoch, 0)
        cluster.update_min_ver(0, 3, 0)  # rec = 2; epoch 3 not recoverable
        return cluster

    def test_restart_preserves_recoverable_image(self):
        cluster = self._populated_cluster()
        _epoch, before = cluster.recover()
        restarted = cluster.cold_restart()
        assert restarted.rec_epoch == 2
        _epoch2, after = restarted.recover()
        assert after == before

    def test_unrecoverable_epochs_are_gone(self):
        cluster = self._populated_cluster()
        restarted = cluster.cold_restart()
        # Epoch 3 never committed: no table, no readable versions.
        assert all(3 not in omc.tables for omc in restarted.omcs)
        assert restarted.time_travel_read(5, 3) == (205, 2)

    def test_restart_accepts_new_versions_after_rec(self):
        cluster = self._populated_cluster()
        restarted = cluster.cold_restart()
        restarted.insert_version(5, 4, 999, 0)
        restarted.update_min_ver(0, 5, 0)
        _epoch, image = restarted.recover()
        assert image[5] == 999

    def test_restart_rejects_stale_versions(self):
        cluster = self._populated_cluster()
        restarted = cluster.cold_restart()
        with pytest.raises(RuntimeError):
            restarted.insert_version(5, 2, 1, 0)

    def test_restart_rebuilds_pool_bitmap(self):
        cluster = self._populated_cluster()
        restarted = cluster.cold_restart()
        assert restarted.pages_in_use() > 0


class TestAccounting:
    def test_metadata_and_working_set_sizes(self):
        cluster = make_cluster(num_vds=1)
        for line in range(128):
            cluster.insert_version(line, 1, line, 0)
        cluster.update_min_ver(0, 2, 0)
        assert cluster.mapped_working_set_bytes() == 128 * 64
        assert cluster.master_metadata_bytes() > 0
        assert cluster.pages_in_use() > 0
