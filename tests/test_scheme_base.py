"""Tests for the SnapshotScheme interface and GlobalEpochScheme base."""

from repro.baselines.base import GlobalEpochScheme
from repro.sim import Machine, NoSnapshot, load, store
from repro.sim.scheme import SnapshotScheme

from tests.util import ScriptedWorkload, tiny_config


class CountingScheme(GlobalEpochScheme):
    """Test double recording commit calls."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.commits = []
        self.store_calls = 0

    def store_hook(self, core_id, line, now):
        self.store_calls += 1
        return 0

    def commit_epoch(self, now):
        self.commits.append((self.epoch, set(self.epoch_write_set)))
        return 0


class TestSnapshotSchemeDefaults:
    def test_all_hooks_are_noops(self):
        scheme = SnapshotScheme()
        assert scheme.on_store(0, 0, 0, 0, 0) == 0
        assert scheme.on_version_writeback(0, 0, 0, 0, "capacity", 0) == 0
        assert scheme.on_l2_dirty_eviction(0, 0, 0, 0, "capacity", 0) == 0
        assert scheme.on_llc_dirty_eviction(0, 0, 0, 0) == 0
        assert scheme.on_epoch_advance(0, 0, 1, 0) == 0
        assert scheme.on_transaction_boundary(0, 0) == 0
        scheme.on_version_migrate(0, 1, 0, 1, 0)  # returns None, no raise
        scheme.poll(0)
        scheme.finalize(0)

    def test_ideal_scheme_never_touches_nvm(self):
        machine = Machine(tiny_config(), scheme=NoSnapshot())
        machine.run(ScriptedWorkload([[[store(0x4000)], [load(0x4000)]] * 50]))
        assert machine.nvm.bytes_written() == 0


class TestGlobalEpochScheme:
    def run_with(self, scheme, num_stores, epoch_size):
        machine = Machine(tiny_config(epoch_size_stores=epoch_size), scheme=scheme)
        ops = [[store(0x4000 + 64 * (i % 32))] for i in range(num_stores)]
        machine.run(ScriptedWorkload([ops]))
        return machine

    def test_epoch_rolls_over_on_store_count(self):
        scheme = CountingScheme()
        self.run_with(scheme, num_stores=100, epoch_size=30)
        # 100 stores at epoch 30: three mid-run commits + finalize.
        assert len(scheme.commits) == 4
        assert scheme.epoch == 5

    def test_write_sets_cleared_per_epoch(self):
        scheme = CountingScheme()
        self.run_with(scheme, num_stores=60, epoch_size=30)
        first_epoch_lines = scheme.commits[0][1]
        assert len(first_epoch_lines) <= 30

    def test_store_hook_called_per_store(self):
        scheme = CountingScheme()
        self.run_with(scheme, num_stores=75, epoch_size=1000)
        assert scheme.store_calls == 75

    def test_finalize_commits_partial_epoch(self):
        scheme = CountingScheme()
        self.run_with(scheme, num_stores=10, epoch_size=1000)
        assert len(scheme.commits) == 1  # from finalize only

    def test_finalize_without_writes_commits_nothing(self):
        scheme = CountingScheme()
        machine = Machine(tiny_config(), scheme=scheme)
        machine.run(ScriptedWorkload([[[load(0x4000)]]]))
        assert scheme.commits == []

    def test_barrier_writes_serialize(self):
        scheme = CountingScheme()
        machine = Machine(tiny_config(), scheme=scheme)
        machine.run(ScriptedWorkload([[[store(0x4000)]]]))
        lines = list(range(8))
        stall = scheme._barrier_writes(lines, 64, 0, "data")
        # Eight serialized sync writes: at least 8x the write latency.
        assert stall >= 8 * machine.nvm.write_latency
