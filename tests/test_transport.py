"""Tests for the snoop coherence transport mode."""

import pytest

from repro.core import NVOverlay, NVOverlayParams, SnapshotReader, golden_image
from repro.harness.sweep import transport_ablation
from repro.sim import Machine, SystemConfig

from tests.util import RandomWorkload, final_image_matches_stores, tiny_config


def snoop_config(**overrides):
    return tiny_config(coherence_transport="snoop", **overrides)


class TestSnoopMode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(coherence_transport="token-ring")

    def test_coherence_correct_under_both_transports(self):
        """Transport changes timing (and hence interleaving), never
        coherence correctness: every final line value is its last store."""
        for transport in ("directory", "snoop"):
            machine = Machine(
                tiny_config(coherence_transport=transport),
                capture_store_log=True,
            )
            machine.run(RandomWorkload(
                num_threads=4, txns_per_thread=250, shared_fraction=0.5, seed=6
            ))
            mismatches, total = final_image_matches_stores(machine)
            assert mismatches == 0 and total > 0, transport

    def test_broadcasts_counted(self):
        machine = Machine(snoop_config())
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=100))
        assert machine.stats.get("net.snoop_broadcasts") > 0
        assert machine.stats.get("net.vd_llc_msgs") == 0  # no directory trips

    def test_nvoverlay_recovery_under_snoop(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(
            snoop_config(epoch_size_stores=64), scheme=scheme,
            capture_store_log=True,
        )
        machine.run(RandomWorkload(
            num_threads=4, txns_per_thread=250, shared_fraction=0.5, seed=3
        ))
        image = SnapshotReader(scheme.cluster).recover()
        assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)

    def test_snoop_cost_grows_with_machine(self):
        data = transport_ablation(
            core_counts=(2, 8),
            scale=0.1,
            base_config=SystemConfig(num_cores=4, cores_per_vd=2,
                                     epoch_size_stores=400),
        )
        snoop_growth = data["snoop"][8] / data["snoop"][2]
        dir_growth = data["directory"][8] / data["directory"][2]
        assert snoop_growth > dir_growth
