"""Targeted tests for hierarchy paths not covered by the protocol suites:
multi-line operations, L1 replacement, flush/image helpers, interconnect
accounting."""

from repro.sim import Interconnect, Machine, MESI, Stats, SystemConfig, load, store

from tests.util import ScriptedWorkload, tiny_config


class TestMultiLineOps:
    def test_store_spanning_lines_dirties_all(self):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(ScriptedWorkload([[[store(0x4000, 256)]]]))
        lines = {line for line, *_ in machine.hierarchy.store_log}
        assert lines == {0x100, 0x101, 0x102, 0x103}

    def test_unaligned_op_touches_both_lines(self):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(ScriptedWorkload([[[store(0x403C, 8)]]]))  # straddles
        lines = {line for line, *_ in machine.hierarchy.store_log}
        assert lines == {0x100, 0x101}

    def test_load_spanning_lines_costs_more(self):
        machine_small = Machine(tiny_config())
        r1 = machine_small.run(ScriptedWorkload([[[load(0x4000, 8)]]]))
        machine_big = Machine(tiny_config())
        r2 = machine_big.run(ScriptedWorkload([[[load(0x4000, 512)]]]))
        assert r2.cycles > r1.cycles


class TestL1Replacement:
    def test_dirty_l1_victim_written_back_to_l2(self):
        config = tiny_config()
        machine = Machine(config, capture_store_log=True)
        # Stores to many lines mapping across L1 sets force L1 victims.
        ops = [[store(0x40000 + i * 64)] for i in range(64)]
        machine.run(ScriptedWorkload([ops]))
        assert machine.stats.get("l1.dirty_evictions") > 0
        # Every token remains reachable through the hierarchy image.
        golden = {line: token for line, _e, token, *_ in machine.hierarchy.store_log}
        image = machine.hierarchy.memory_image()
        assert all(image.get(line) == token for line, token in golden.items())


class TestFlushHelpers:
    def test_flush_all_settles_into_main_memory(self):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(ScriptedWorkload([[[store(0x4000)], [store(0x8000)]]]))
        machine.hierarchy.flush_all(0)
        golden = {line: token for line, _e, token, *_ in machine.hierarchy.store_log}
        for line, token in golden.items():
            assert machine.mem.data_of(line) == token

    def test_flush_all_leaves_lines_clean(self):
        machine = Machine(tiny_config())
        machine.run(ScriptedWorkload([[[store(0x4000)]]]))
        machine.hierarchy.flush_all(0)
        for l1 in machine.hierarchy.l1s:
            assert not list(l1.dirty_lines())
        for vd in machine.hierarchy.vds:
            assert not list(vd.l2.dirty_lines())

    def test_memory_image_prefers_cache_over_memory(self):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(ScriptedWorkload([[[store(0x4000)]]]))
        token = machine.hierarchy.store_log[-1][2]
        # Memory still stale (no flush), yet the image sees the L1 value.
        assert machine.mem.data_of(0x100) != token
        assert machine.hierarchy.memory_image()[0x100] == token


class TestInterconnect:
    def test_hop_costs(self):
        stats = Stats()
        net = Interconnect(SystemConfig(), stats)
        assert net.vd_to_llc() == net.hop
        assert net.vd_to_vd_via_directory() == 2 * net.hop
        assert net.cache_to_cache() == net.hop
        assert net.vd_to_omc() == net.hop
        assert stats.get("net.vd_llc_msgs") == 1
        assert stats.get("net.forwarded_msgs") == 1

    def test_omc_traffic_counted_only_when_versioned(self):
        from repro.core import NVOverlay

        plain = Machine(tiny_config())
        plain.run(ScriptedWorkload([[[store(0x4000)]]]))
        assert plain.stats.get("net.omc_msgs") == 0

        versioned = Machine(tiny_config(), scheme=NVOverlay())
        versioned.run(ScriptedWorkload([[[store(0x4000)]]]))
        assert versioned.stats.get("net.omc_msgs") > 0


class TestEvictionStats:
    def test_llc_eviction_counters(self):
        machine = Machine(tiny_config())
        ops = [[store(0x100000 + i * 64)] for i in range(600)]
        machine.run(ScriptedWorkload([ops]))
        assert machine.stats.get("llc.evictions") > 0
        assert machine.stats.get("llc.dirty_evictions") > 0
        assert machine.stats.get("dram.writes") > 0
