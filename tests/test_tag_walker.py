"""Tests for the per-VD tag walker and min-ver reporting."""

from repro.core import NVOverlay, NVOverlayParams
from repro.sim import Machine, store

from tests.util import RandomWorkload, ScriptedWorkload, tiny_config


def machine_with_walker(enabled=True, rate=64, **overrides):
    scheme = NVOverlay(
        NVOverlayParams(num_omcs=1, pool_pages=4096, enable_tag_walker=enabled)
    )
    config = tiny_config(tag_walk_rate=rate, **overrides)
    return Machine(config, scheme=scheme, capture_store_log=True), scheme


class TestWalking:
    def test_walker_makes_passes_during_run(self):
        machine, scheme = machine_with_walker()
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=300))
        assert machine.stats.get("walker.passes") > 0
        assert all(w.passes_completed > 0 for w in scheme.walkers)

    def test_walker_persists_old_versions(self):
        machine, scheme = machine_with_walker(epoch_size_stores=64)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=300))
        assert machine.stats.get("evict_reason.tag_walk") > 0

    def test_disabled_walker_never_scans(self):
        machine, scheme = machine_with_walker(enabled=False)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=200))
        assert machine.stats.get("walker.passes") == 0
        assert machine.stats.get("evict_reason.tag_walk") == 0

    def test_rec_epoch_advances_during_run_with_walker(self):
        machine, scheme = machine_with_walker(epoch_size_stores=64)
        rec_seen = []

        class Probe(RandomWorkload):
            def transactions(self, tid):
                for txn in super().transactions(tid):
                    rec_seen.append(scheme.cluster.rec_epoch)
                    yield txn

        machine.run(Probe(num_threads=4, txns_per_thread=400))
        assert max(rec_seen) > 0  # recoverable mid-run, not only at finalize

    def test_scan_rate_limits_progress(self):
        """A slower walker completes fewer passes over the same run."""
        fast, _ = machine_with_walker(rate=256)
        fast.run(RandomWorkload(num_threads=4, txns_per_thread=200, seed=3))
        slow, _ = machine_with_walker(rate=4)
        slow.run(RandomWorkload(num_threads=4, txns_per_thread=200, seed=3))
        assert slow.stats.get("walker.passes") < fast.stats.get("walker.passes")

    def test_correctness_without_walker(self):
        """§IV-C: protocol correctness never depends on walker progress."""
        from repro.core import SnapshotReader, golden_image

        machine, scheme = machine_with_walker(enabled=False, epoch_size_stores=64)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=300, seed=8))
        image = SnapshotReader(scheme.cluster).recover()
        golden = golden_image(machine.hierarchy.store_log, image.epoch)
        assert image.lines == golden


class TestMinVerReports:
    def test_completed_pass_reports_to_cluster(self):
        machine, scheme = machine_with_walker()
        machine.run(ScriptedWorkload([[[store(0x4000)]] * 50]))
        # After finalize, every VD's min-ver equals the final epoch.
        final = max(vd.cur_epoch for vd in machine.hierarchy.vds)
        assert all(v == final for v in scheme.cluster.min_vers.values())

    def test_force_pass(self):
        machine, scheme = machine_with_walker(enabled=False)
        done = {}

        class W:
            num_threads = 1

            def transactions(self, tid):
                yield [store(0x4000)]
                machine.hierarchy.advance_epoch(machine.hierarchy.vds[0], 5, 0)
                scheme.walkers[0].force_pass(0)
                done["min_ver"] = scheme.cluster.min_vers[0]

        machine.run(W())
        assert done["min_ver"] == 5
