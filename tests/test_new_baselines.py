"""Tests for the related-work baseline schemes (PR 10).

Covers the three additions to ``repro.baselines`` — In-Cache-Line
Logging, JASS-style adaptive checkpointing, and the msync-based
userspace Snapshot — plus the two ``sim``-layer mechanisms they brought
with them: the CXL-attached NVM device profile and the adaptive
epoch-sizing policy.  The forced-serial regression for the parallel
engine's scheme envelope lives here too.
"""

import dataclasses

import pytest

from repro.harness.bench import run_fingerprint
from repro.harness.runner import COMPARED_SCHEMES, SCHEMES, make_scheme, simulate
from repro.harness.spec import (
    RunSpec,
    config_from_dict,
    config_to_dict,
)
from repro.sim import (
    NVM,
    NVM_PROFILES,
    AdaptiveEpochPolicy,
    Machine,
    Stats,
    SystemConfig,
)
from repro.sim.parallel import ParallelMachine
from repro.oracle.differential import freeze_workload
from repro.workloads import make_workload

SMALL = SystemConfig.small()
NEW_SCHEMES = ("icl", "jass_adaptive", "msync_snapshot")


def _spec(scheme, *, config=SMALL, workload="uniform", scale=0.02, **kw):
    return RunSpec(workload=workload, scheme=scheme, config=config,
                   scale=scale, seed=1, **kw)


def _run_machine(scheme, *, config=SMALL, workload="uniform", scale=0.02):
    """A direct Machine run, for asserting on raw scheme counters."""
    machine = Machine(config, scheme=make_scheme(scheme))
    machine.run(make_workload(
        workload, num_threads=config.num_cores, scale=scale, seed=1,
    ))
    return machine


class TestRegistry:
    def test_new_schemes_registered_and_compared(self):
        for name in NEW_SCHEMES:
            assert name in SCHEMES
            assert name in COMPARED_SCHEMES
            scheme = make_scheme(name)
            assert scheme.name == name
            assert not scheme.uses_version_protocol

    def test_new_schemes_run_through_runspec(self):
        for name in NEW_SCHEMES:
            record = simulate(_spec(name))
            assert record.scheme == name
            assert record.cycles > 0 and record.stores > 0
            assert record.total_nvm_bytes > 0


class TestICL:
    def test_logs_in_background_and_prunes(self):
        stats = _run_machine("icl").stats
        # One embedded entry per first-store-per-line — background, so no
        # sync barrier per store; the only sync writes are commit records
        # (one per epoch rollover plus the final partial epoch).
        assert stats.get("nvm.bytes.log") > 0
        assert stats.get("nvm.sync_writes") <= stats.get("epoch.advances") + 1
        # The pruner ran and reclaimed the committed epochs' entries.
        assert stats.get("icl.pruned_entries") > 0
        assert stats.get("icl.prune_writes") > 0

    def test_cheaper_than_sw_logging(self):
        """The whole point of ICL: no per-store persistence barrier."""
        icl = simulate(_spec("icl"))
        sw = simulate(_spec("sw_logging"))
        assert icl.cycles < sw.cycles


class TestJASSAdaptive:
    def test_switches_strategies_under_mixed_locality(self):
        stats = _run_machine(
            "jass_adaptive", workload="kmeans", scale=0.05
        ).stats
        # kmeans rewrites its centroid pages densely: some pages must
        # have migrated off the default undo leg.
        assert stats.get("jass.switches") > 0
        assert stats.get("jass.redirections") > 0
        assert stats.get("jass.log_entries") > 0

    def test_sparse_workload_stays_on_undo_leg(self):
        scheme = make_scheme("jass_adaptive")
        machine = Machine(SMALL, scheme=scheme)
        workload = make_workload("uniform", num_threads=4, scale=0.02, seed=1)
        machine.run(workload)
        # Uniform random stores rarely dirty 8+ lines of one page per
        # 64-store epoch, so the shadow leg should stay rare.
        undo = machine.stats.get("jass.undo_pages")
        shadow = machine.stats.get("jass.shadow_pages")
        assert undo > shadow


class TestMsyncSnapshot:
    def test_page_faults_and_page_granularity_flushes(self):
        stats = _run_machine("msync_snapshot").stats
        assert stats.get("msync.page_faults") > 0
        assert stats.get("msync.pages_flushed") > 0
        # Page-granularity amplification: data bytes are a whole number
        # of 4 KB pages, far above the lines actually dirtied.
        data_bytes = stats.get("nvm.bytes.data")
        assert data_bytes % 4096 == 0
        assert data_bytes >= stats.get("msync.pages_flushed") * 4096

    def test_most_expensive_software_scheme(self):
        msync = simulate(_spec("msync_snapshot"))
        sw = simulate(_spec("sw_logging"))
        assert msync.total_nvm_bytes > sw.total_nvm_bytes


class TestCXLProfile:
    def test_profiles_registered(self):
        assert set(NVM_PROFILES) >= {"local", "cxl"}
        assert NVM_PROFILES["local"].extra_write_latency == 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="NVM device profile"):
            SystemConfig(nvm_profile="pcie")

    def test_device_latencies_shift(self):
        local = NVM(SMALL, Stats())
        cxl = NVM(SMALL.with_changes(nvm_profile="cxl"), Stats())
        assert cxl.write_latency > local.write_latency
        assert cxl.read_latency > local.read_latency
        assert cxl.bank_occupancy > local.bank_occupancy
        assert cxl.backpressure < local.backpressure

    def test_cxl_changes_measured_latency_distribution(self):
        """End to end: same cells, measurably slower on CXL."""
        local = simulate(_spec("msync_snapshot", capture_latency=True))
        cxl = simulate(_spec(
            "msync_snapshot", config=SMALL.with_changes(nvm_profile="cxl"),
            capture_latency=True,
        ))
        assert cxl.cycles > local.cycles
        assert (cxl.extra["store_latency_p99"]
                >= local.extra["store_latency_p99"])

    def test_profile_is_part_of_the_cache_key(self):
        a = _spec("msync_snapshot").cache_key()
        b = _spec(
            "msync_snapshot", config=SMALL.with_changes(nvm_profile="cxl")
        ).cache_key()
        assert a != b


class TestAdaptiveEpochPolicy:
    def test_controller_nudges_toward_target(self):
        policy = AdaptiveEpochPolicy(
            base_size=1000, min_size=100, max_size=10_000,
            target_dirty_lines=64,
        )
        assert policy.size_at(0) == 1000
        policy.observe_commit(stores=1000, dirty_lines=256)  # too dirty
        shrunk = policy.size_at(0)
        assert shrunk < 1000
        policy.observe_commit(stores=shrunk, dirty_lines=4)  # very sparse
        assert policy.size_at(0) > shrunk
        policy.reset()
        assert policy.size_at(0) == 1000

    def test_clamps_to_bounds(self):
        policy = AdaptiveEpochPolicy(
            base_size=1000, min_size=900, max_size=1100,
            target_dirty_lines=64,
        )
        for _ in range(10):
            policy.observe_commit(1000, 10_000)
        assert policy.size_at(0) == 900
        for _ in range(10):
            policy.observe_commit(1000, 1)
        assert policy.size_at(0) == 1100

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(base_size=10, min_size=100, max_size=1000)
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(gain=0.0)
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(target_dirty_lines=0)

    def test_serialization_round_trip(self):
        policy = AdaptiveEpochPolicy(
            base_size=2000, min_size=200, max_size=20_000,
            target_dirty_lines=128, gain=0.25,
        )
        config = SMALL.with_changes(epoch_policy=policy)
        restored = config_from_dict(config_to_dict(config))
        assert restored.epoch_policy == policy
        # Runtime state never leaks into the cache key: a mutated
        # controller serializes identically to a fresh one.
        policy.observe_commit(1000, 10_000)
        assert config_to_dict(config) == config_to_dict(
            SMALL.with_changes(epoch_policy=dataclasses.replace(policy))
        )

    @pytest.mark.parametrize("scheme", ["nvoverlay", "sw_logging", "icl"])
    def test_runs_deterministically_under_schemes(self, scheme):
        policy = AdaptiveEpochPolicy(
            base_size=64, min_size=16, max_size=256, target_dirty_lines=8,
        )
        config = SMALL.with_changes(epoch_policy=policy)
        first = _run_machine(scheme, config=config, scale=0.05)
        second = _run_machine(scheme, config=config, scale=0.05)
        assert first.stats.counters() == second.stats.counters()
        assert first.hierarchy.memory_image() == second.hierarchy.memory_image()

    def test_epoch_size_actually_adapts(self):
        """The controller must move the epoch size away from base."""
        policy = AdaptiveEpochPolicy(
            base_size=64, min_size=16, max_size=4096, target_dirty_lines=4,
        )
        config = SMALL.with_changes(epoch_policy=policy)
        scheme = make_scheme("sw_logging")
        machine = Machine(config, scheme=scheme)
        workload = make_workload("uniform", num_threads=4, scale=0.05, seed=1)
        machine.run(workload)
        assert policy.size_at(0) != 64
        # And the run behaves differently from the fixed-size policy.
        fixed = simulate(_spec("sw_logging", scale=0.05))
        adaptive = simulate(_spec("sw_logging", config=config, scale=0.05))
        assert fixed.cycles != adaptive.cycles


class TestParallelEnvelope:
    """Satellite 4: schemes outside the validated envelope force serial."""

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_new_scheme_forces_serial_engine(self, scheme):
        config = dataclasses.replace(SMALL, sim_workers=2)
        machine = ParallelMachine(config, scheme=make_scheme(scheme))
        frozen = freeze_workload(
            make_workload("uniform", num_threads=4, scale=0.02, seed=1)
        )
        machine.run(frozen)
        assert not machine.parallel_engaged
        assert not machine.fused_access

    @pytest.mark.parametrize("scheme", NEW_SCHEMES)
    def test_workers2_runspec_matches_serial_fingerprint(self, scheme):
        serial = run_fingerprint(_spec(scheme))
        parallel = run_fingerprint(
            _spec(scheme, config=dataclasses.replace(SMALL, sim_workers=2))
        )
        behavioral = {k: v for k, v in serial.items() if k != "spec_key"}
        assert behavioral == {
            k: v for k, v in parallel.items() if k != "spec_key"
        }
        # sim_workers deliberately stays in the cache key.
        assert serial["spec_key"] != parallel["spec_key"]

    def test_validated_schemes_keep_the_parallel_engine(self):
        for name in ("ideal", "picl", "picl_l2", "nvoverlay"):
            assert make_scheme(name).parallel_safe
        for name in NEW_SCHEMES:
            assert not make_scheme(name).parallel_safe
