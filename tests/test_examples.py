"""Smoke tests: every shipped example runs to completion.

The examples are deliverables (they demonstrate the paper's four usage
models); each declares success/failure itself via asserts or SystemExit,
so "main() returns" is a meaningful check.  They run at their built-in
scales, which keeps this module the slowest test file — still well under
a minute each.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "crash_recovery",
        "remote_replication",
        "time_travel_debugging",
    ],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert "MISMATCH" not in out
    assert "OK" in out or "savings" in out


def test_scheme_shootout_runs(capsys, monkeypatch):
    module = _load("scheme_shootout")
    monkeypatch.setattr(sys, "argv", ["scheme_shootout.py", "uniform", "0.05"])
    module.main()
    out = capsys.readouterr().out
    assert "nvoverlay" in out


def test_scheme_shootout_rejects_unknown_workload(monkeypatch):
    module = _load("scheme_shootout")
    monkeypatch.setattr(sys, "argv", ["scheme_shootout.py", "nope"])
    with pytest.raises(SystemExit):
        module.main()
