"""Unit tests for the previously untested workload modules.

Covers the two index structures that only ever ran end-to-end (the
adaptive radix tree and the red-black tree), fills the accounting gaps
in the allocator and ``MemView`` recorder tests, and pins the
workload-level contracts the harness and fuzzer rely on: determinism
under a fixed seed, ``access_batches``/``transactions`` shape
equivalence, and thread-count scaling of the stream.
"""

import random

import pytest

from repro.oracle.differential import freeze_workload
from repro.sim.trace import STORE
from repro.workloads import make_workload
from repro.workloads.alloc import AddressSpace, Arena
from repro.workloads.art import NODE_SPECS, AdaptiveRadixTree
from repro.workloads.memview import MemView
from repro.workloads.rbtree import RedBlackTree


def _fresh_arena() -> Arena:
    return AddressSpace().region()


class TestAdaptiveRadixTree:
    def test_insert_lookup_roundtrip(self):
        tree = AdaptiveRadixTree(_fresh_arena())
        view = MemView()
        rng = random.Random(7)
        keys = {rng.getrandbits(30) for _ in range(200)}
        for key in keys:
            tree.insert(key, key ^ 0x5A5A, view)
        assert tree.size == len(keys)
        for key in keys:
            assert tree.lookup(key, view) == key ^ 0x5A5A
        absent = next(k for k in range(1 << 30) if k not in keys)
        assert tree.lookup(absent, view) is None

    def test_update_existing_key(self):
        tree = AdaptiveRadixTree(_fresh_arena())
        view = MemView()
        tree.insert(42, 1, view)
        tree.insert(42, 2, view)
        assert tree.size == 1
        assert tree.lookup(42, view) == 2

    def test_node_growth_through_all_types(self):
        """256 distinct top key bytes force the root through
        Node4 → Node16 → Node48 → Node256."""
        tree = AdaptiveRadixTree(_fresh_arena())
        view = MemView()
        kinds = {tree.root.kind}
        for byte in range(256):
            tree.insert(byte << 56, byte, view)
            kinds.add(tree.root.kind)
        assert kinds == {4, 16, 48, 256}
        assert tree.grows == 3
        for byte in range(256):
            assert tree.lookup(byte << 56, view) == byte

    def test_growth_frees_old_node(self):
        """Growing copies into a bigger node and frees the old one, so
        the next same-size allocation reuses its address (slab reuse)."""
        tree = AdaptiveRadixTree(_fresh_arena())
        view = MemView()
        old_addr = tree.root.addr
        for byte in range(5):  # fifth distinct byte grows Node4 -> Node16
            tree.insert(byte << 56, byte, view)
        assert tree.root.kind == 16
        assert tree.arena.alloc(NODE_SPECS[4][1], align=64) == old_addr

    def test_accesses_recorded_with_stores(self):
        tree = AdaptiveRadixTree(_fresh_arena())
        view = MemView()
        tree.insert(1, 1, view)
        accesses = view.take_accesses()
        assert accesses and any(is_store for _, _, is_store in accesses)
        tree.lookup(1, view)
        assert all(not is_store for _, _, is_store in view.take_accesses())


class TestRedBlackTree:
    def test_insert_lookup_roundtrip(self):
        tree = RedBlackTree(_fresh_arena())
        view = MemView()
        rng = random.Random(11)
        keys = {rng.getrandbits(20) for _ in range(300)}
        for key in keys:
            assert tree.insert(key, key + 1, view) is True
        assert tree.size == len(keys)
        for key in keys:
            assert tree.lookup(key, view) == key + 1
        absent = next(k for k in range(1 << 20) if k not in keys)
        assert tree.lookup(absent, view) is None

    def test_duplicate_insert_updates_in_place(self):
        tree = RedBlackTree(_fresh_arena())
        view = MemView()
        assert tree.insert(5, 1, view) is True
        assert tree.insert(5, 9, view) is False
        assert tree.size == 1
        assert tree.lookup(5, view) == 9

    @pytest.mark.parametrize("order", ["ascending", "descending", "random"])
    def test_invariants_hold_under_insertion_orders(self, order):
        """The red-black properties (BST order, no red-red edge, equal
        black heights, black root) survive adversarial insert orders."""
        keys = list(range(128))
        if order == "descending":
            keys.reverse()
        elif order == "random":
            random.Random(3).shuffle(keys)
        tree = RedBlackTree(_fresh_arena())
        view = MemView()
        for key in keys:
            tree.insert(key, key, view)
        black_height = tree.check_invariants()
        # 128 sorted inserts into an unbalanced BST would be depth 128;
        # a legal red-black tree of 128 keys has black height <= 8.
        assert 1 <= black_height <= 8

    def test_rotations_record_stores(self):
        tree = RedBlackTree(_fresh_arena())
        view = MemView()
        for key in range(8):  # ascending order forces rotations
            tree.insert(key, key, view)
        accesses = view.take_accesses()
        assert sum(1 for _, _, is_store in accesses if is_store) > 8


class TestArenaAccounting:
    def test_allocated_bytes_tracks_alloc_and_free(self):
        arena = Arena(0x1000, 0x10000)
        a = arena.alloc(64)
        arena.alloc(32)
        assert arena.allocated_bytes == 96
        arena.free(a, 64)
        assert arena.allocated_bytes == 32

    def test_used_is_high_water_mark(self):
        """used() measures bump-cursor advance: frees recycle addresses
        but never shrink the footprint."""
        arena = Arena(0x1000, 0x10000)
        a = arena.alloc(64)
        arena.free(a, 64)
        assert arena.used() == 64
        arena.alloc(64)  # comes from the free list
        assert arena.used() == 64

    def test_rounding_matches_alignment(self):
        arena = Arena(0x1000, 0x10000)
        arena.alloc(10, align=16)
        assert arena.allocated_bytes == 16


class TestMemViewContract:
    def test_take_accesses_clears(self):
        view = MemView()
        view.read(0x100)
        view.write(0x108)
        assert len(view) == 2
        assert view.take_accesses() == [(0x100, 8, False), (0x108, 8, True)]
        assert len(view) == 0
        assert view.take_accesses() == []

    def test_take_matches_take_accesses(self):
        a, b = MemView(), MemView()
        for view in (a, b):
            view.read(0x40, 4)
            view.write(0x80, 16)
        ops = a.take()
        tuples = b.take_accesses()
        assert [(op.addr, op.size, op.kind == STORE) for op in ops] == tuples

    def test_range_chunk_never_exceeds_word(self):
        view = MemView()
        view.write_range(0x0, 16, stride=4)
        accesses = view.take_accesses()
        assert [addr for addr, _, _ in accesses] == [0x0, 0x4, 0x8, 0xC]
        assert all(size == 4 for _, size, _ in accesses)


@pytest.mark.parametrize("name", ["art", "rbtree"])
class TestWorkloadContracts:
    def test_fixed_seed_is_deterministic(self, name):
        one = freeze_workload(make_workload(name, num_threads=4, scale=0.05,
                                            seed=9))
        two = freeze_workload(make_workload(name, num_threads=4, scale=0.05,
                                            seed=9))
        assert one._batches == two._batches

    def test_seed_changes_the_stream(self, name):
        one = freeze_workload(make_workload(name, num_threads=2, scale=0.05,
                                            seed=1))
        two = freeze_workload(make_workload(name, num_threads=2, scale=0.05,
                                            seed=2))
        assert one._batches != two._batches

    def test_stream_shapes_are_equivalent(self, name):
        """transactions() (MemOp lists) and access_batches() (flat
        tuples) describe the same trace.  Two same-seed instances are
        compared — the index mutates as a stream is consumed, so one
        instance cannot replay both shapes."""
        by_ops = make_workload(name, num_threads=1, scale=0.05, seed=5)
        by_tuples = make_workload(name, num_threads=1, scale=0.05, seed=5)
        ops_view = [
            [(op.addr, op.size, op.kind == STORE) for op in txn]
            for txn in by_ops.transactions(0)
        ]
        assert ops_view == list(by_tuples.access_batches(0))

    def test_thread_count_scales_stream(self, name):
        per_thread = None
        for threads in (1, 2, 4):
            workload = make_workload(name, num_threads=threads, scale=0.05,
                                     seed=3)
            counts = [
                sum(1 for _ in workload.access_batches(tid))
                for tid in range(threads)
            ]
            assert len(set(counts)) == 1, "threads must get equal shares"
            if per_thread is None:
                per_thread = counts[0]
            assert counts[0] == per_thread
            assert sum(counts) == threads * per_thread
