"""Tests for the extension features: OS pool growth, snapshot diff, CSV."""

import pytest

from repro.core import (
    NVOverlay,
    NVOverlayParams,
    PoolExhaustedError,
    SnapshotReader,
)
from repro.harness.report import to_csv
from repro.sim import Machine, store

from tests.util import RandomWorkload, ScriptedWorkload, tiny_config


class TestOSPoolGrowth:
    def test_exhaustion_raises_without_growth(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1, pool_pages=1))
        machine = Machine(tiny_config(), scheme=scheme)
        with pytest.raises(PoolExhaustedError):
            machine.run(RandomWorkload(num_threads=4, txns_per_thread=300))

    def test_os_grant_absorbs_exhaustion(self):
        scheme = NVOverlay(
            NVOverlayParams(num_omcs=1, pool_pages=1, os_grow_pages=16)
        )
        machine = Machine(tiny_config(), scheme=scheme, capture_store_log=True)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=300))
        assert machine.stats.get("omc0.os_grows") > 0
        # Consistency is unaffected by mid-run pool growth.
        from repro.core import golden_image

        image = SnapshotReader(scheme.cluster).recover()
        assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)


class TestSnapshotDiff:
    def _reader(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(), scheme=scheme)
        hierarchy = machine.hierarchy

        class W:
            num_threads = 1

            def transactions(self, tid):
                yield [store(0x4000)]
                yield [store(0x4040)]
                hierarchy.advance_epoch(hierarchy.vds[0], 5, 0)
                yield [store(0x4000)]  # changes in epoch 5

        machine.run(W())
        return SnapshotReader(scheme.cluster)

    def test_diff_reports_changed_lines(self):
        reader = self._reader()
        changed = reader.diff(1, 5)
        assert (0x4000 >> 6) in changed
        assert (0x4040 >> 6) not in changed

    def test_diff_is_order_insensitive(self):
        reader = self._reader()
        assert reader.diff(5, 1) == reader.diff(1, 5)

    def test_diff_same_epoch_empty(self):
        reader = self._reader()
        assert reader.diff(5, 5) == {}

    def test_diff_reports_birth_of_line(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(), scheme=scheme)
        hierarchy = machine.hierarchy

        class W:
            num_threads = 1

            def transactions(self, tid):
                yield [store(0x4000)]
                hierarchy.advance_epoch(hierarchy.vds[0], 3, 0)
                yield [store(0x8000)]  # new line in epoch 3

        machine.run(W())
        changed = SnapshotReader(scheme.cluster).diff(1, 3)
        line = 0x8000 >> 6
        assert changed[line][0] is None and changed[line][1] is not None


class TestEpochsTouching:
    def test_reports_writing_epochs_only(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(), scheme=scheme)
        hierarchy = machine.hierarchy

        class W:
            num_threads = 1

            def transactions(self, tid):
                yield [store(0x4000)]
                hierarchy.advance_epoch(hierarchy.vds[0], 4, 0)
                yield [store(0x8000)]
                hierarchy.advance_epoch(hierarchy.vds[0], 9, 0)
                yield [store(0x4000)]

        machine.run(W())
        reader = SnapshotReader(scheme.cluster)
        assert reader.epochs_touching(0x4000) == [1, 9]
        assert reader.epochs_touching(0x8000) == [4]
        assert reader.epochs_touching(0xF000) == []


class TestCSVExport:
    def test_csv_rendering(self):
        text = to_csv(["a", "b"], {"w1": {"a": 1.25, "b": 3}, "w2": {"a": 0.5}})
        lines = text.splitlines()
        assert lines[0] == "workload,a,b"
        assert lines[1] == "w1,1.25,3"
        assert lines[2] == "w2,0.5,"
