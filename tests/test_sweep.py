"""Tests for the scalability and ablation sweeps."""

import pytest

from repro.harness.cache import RunCache
from repro.harness.sweep import (
    omc_count_ablation,
    protocol_ablation,
    scalability_sweep,
    vd_size_ablation,
    walk_rate_ablation,
)
from repro.sim import SystemConfig

SMALL = SystemConfig(num_cores=4, cores_per_vd=2, epoch_size_stores=400)


class TestScalability:
    def test_sweep_shape(self):
        data = scalability_sweep(
            core_counts=(2, 4), workload="uniform",
            txns_per_core_scale=0.05, base_config=SMALL,
        )
        assert set(data) == {2, 4}
        for row in data.values():
            assert row["normalized_cycles"] > 0
            assert row["nvm_bytes_per_store"] > 0

    def test_rejects_indivisible_cores(self):
        with pytest.raises(ValueError):
            scalability_sweep(core_counts=(3,), base_config=SMALL)

    def test_overhead_stays_bounded_with_scale(self):
        data = scalability_sweep(
            core_counts=(2, 8), workload="uniform",
            txns_per_core_scale=0.1, base_config=SMALL,
        )
        # The scalability claim: overhead does not blow up with cores.
        assert data[8]["normalized_cycles"] < data[2]["normalized_cycles"] * 1.6


class TestVDSize:
    def test_ablation_shape(self):
        data = vd_size_ablation(
            vd_sizes=(1, 2), workload="uniform", scale=0.05, base_config=SMALL
        )
        assert set(data) == {1, 2}
        for row in data.values():
            assert row["epoch_advances"] > 0

    def test_rejects_indivisible_vd(self):
        with pytest.raises(ValueError):
            vd_size_ablation(vd_sizes=(3,), base_config=SMALL)


class TestOMCCount:
    def test_metadata_grows_with_omc_count(self):
        data = omc_count_ablation(
            omc_counts=(1, 4), workload="uniform", scale=0.1, base_config=SMALL
        )
        # Duplicated upper radix levels: more OMCs, more metadata bytes.
        assert data[4]["metadata_bytes"] >= data[1]["metadata_bytes"]


class TestProtocolAblation:
    def test_moesi_reduces_coherence_writebacks(self):
        data = protocol_ablation(
            workload="uniform", scale=0.2, base_config=SMALL
        )
        assert set(data) == {"mesi", "moesi"}
        assert (
            data["moesi"]["coherence_writebacks"]
            <= data["mesi"]["coherence_writebacks"]
        )


class TestWalkRate:
    def test_slower_walker_lags_more(self):
        data = walk_rate_ablation(
            rates=(2, 512), workload="uniform", scale=0.3, base_config=SMALL
        )
        assert (
            data[2]["snapshot_lag_epochs"] >= data[512]["snapshot_lag_epochs"]
        )
        assert data[512]["tag_walk_writebacks"] >= data[2]["tag_walk_writebacks"]

    def test_second_run_served_from_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        kwargs = dict(rates=(2, 64), workload="uniform", scale=0.1,
                      base_config=SMALL, cache=cache)
        first = walk_rate_ablation(**kwargs)
        assert cache.misses == 2 and cache.hits == 0
        second = walk_rate_ablation(**kwargs)
        assert cache.hits == 2
        assert second == first
