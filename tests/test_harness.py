"""Tests for the experiment harness: runner, experiments, reports.

Experiment functions run at very small scale here — these tests check
structure and internal consistency, not the paper's numbers (the
benchmarks under benchmarks/ regenerate those).
"""

import pytest

from repro.core import NVOverlayParams
from repro.harness import COMPARED_SCHEMES, SCHEMES, compare, make_scheme, run_one
from repro.harness import experiments, report
from repro.harness.spec import RunSpec
from repro.sim import SystemConfig

SMALL = SystemConfig(num_cores=4, cores_per_vd=2, epoch_size_stores=500)
TINY_SCALE = 0.05


class TestRunner:
    def test_registry_covers_paper_schemes(self):
        assert set(COMPARED_SCHEMES) <= set(SCHEMES)
        assert "ideal" in SCHEMES

    def test_make_scheme_unknown(self):
        with pytest.raises(KeyError):
            make_scheme("nope")

    def test_make_scheme_nvo_params(self):
        scheme = make_scheme("nvoverlay", NVOverlayParams(num_omcs=3))
        assert scheme.params.num_omcs == 3

    def test_run_one_record_fields(self):
        record = run_one(RunSpec(workload="uniform", scheme="picl",
                                 config=SMALL, scale=TINY_SCALE))
        assert record.workload == "uniform"
        assert record.scheme == "picl"
        assert record.cycles > 0
        assert record.stores > 0
        assert record.total_nvm_bytes > 0
        assert "log" in record.nvm_bytes

    def test_run_one_nvoverlay_extras(self):
        record = run_one(RunSpec(workload="uniform", scheme="nvoverlay",
                                 config=SMALL, scale=TINY_SCALE))
        assert record.extra["master_metadata_bytes"] > 0
        assert record.extra["mapped_working_set_bytes"] > 0
        assert record.extra["rec_epoch"] > 0

    def test_compare_normalizes(self):
        records = compare(
            RunSpec(workload="uniform", scheme="ideal", config=SMALL,
                    scale=TINY_SCALE),
            ["picl", "nvoverlay"],
        )
        assert records["ideal"].extra["normalized_cycles"] == 1.0
        assert records["nvoverlay"].extra["normalized_write_bytes"] == 1.0
        assert records["picl"].extra["normalized_cycles"] > 0


class TestExperiments:
    def test_table1_rows_and_nvoverlay_column(self):
        rows = experiments.table1_qualitative()
        assert set(rows) == set(COMPARED_SCHEMES)
        assert all(rows["nvoverlay"][key] not in (False,) for key in (
            "min_write_amplification", "no_commit_time", "distributed_versioning",
        ))

    def test_fig11_structure(self):
        data = experiments.fig11_normalized_cycles(
            workloads=["uniform"], config=SMALL, scale=TINY_SCALE,
            schemes=["picl", "nvoverlay"],
        )
        assert set(data) == {"uniform"}
        assert set(data["uniform"]) == {"picl", "nvoverlay"}

    def test_fig12_normalized_to_nvoverlay(self):
        data = experiments.fig12_write_amplification(
            workloads=["uniform"], config=SMALL, scale=TINY_SCALE,
            schemes=["picl", "nvoverlay"],
        )
        assert data["uniform"]["nvoverlay"] == 1.0

    def test_fig13_positive_percentages(self):
        data = experiments.fig13_metadata_cost(
            workloads=["uniform"], config=SMALL, scale=TINY_SCALE
        )
        assert data["uniform"] > 0

    def test_fig14_sweep_keys(self):
        data = experiments.fig14_epoch_sensitivity(
            epoch_sizes=(200, 400), workload="uniform", config=SMALL,
            scale=TINY_SCALE,
        )
        assert set(data) == {200, 400}
        for row in data.values():
            assert set(row) == {"picl", "picl_l2", "nvoverlay"}

    def test_fig15_percentages_sum_to_100(self):
        data = experiments.fig15_evict_reasons(
            workload="uniform", config=SMALL, scale=TINY_SCALE
        )
        for variant in ("with_walker", "without_walker"):
            for scheme, reasons in data[variant].items():
                assert sum(reasons.values()) == pytest.approx(100.0, abs=0.1)

    def test_fig16_buffer_reduces_writes(self):
        data = experiments.fig16_omc_buffer(
            workload="uniform", config=SMALL, scale=0.2
        )
        assert data["with_buffer"]["nvm_data_writes"] <= (
            data["no_buffer"]["nvm_data_writes"]
        )
        assert "buffer_hit_rate" in data["with_buffer"]

    def test_fig17_series_for_both_schemes(self):
        data = experiments.fig17_bandwidth(
            workload="uniform", config=SMALL, scale=TINY_SCALE
        )
        assert set(data) == {"picl", "nvoverlay"}
        assert all(points for points in data.values())

    def test_fig17_bursty_policy_runs(self):
        data = experiments.fig17_bandwidth(
            workload="uniform", config=SMALL, scale=TINY_SCALE, bursty=True
        )
        assert set(data) == {"picl", "nvoverlay"}


class TestReport:
    def test_format_table_renders_values(self):
        text = report.format_table(
            "T", ["a", "b"], {"row1": {"a": 1.5, "b": True}, "row2": {"a": 2}}
        )
        assert "T" in text and "row1" in text and "1.50" in text and "yes" in text

    def test_format_series(self):
        text = report.format_series(
            "BW", {"s1": [(0, 10), (100, 5)], "s2": []}
        )
        assert "s1" in text and "peak=10" in text and "(no data)" in text

    def test_summarize_reduction(self):
        ratios = {"w1": {"picl": 1.5}, "w2": {"picl": 2.0}}
        text = report.summarize_reduction(ratios, "picl")
        assert "33%" in text and "50%" in text

    def test_summarize_reduction_no_data(self):
        assert "no data" in report.summarize_reduction({}, "picl")
