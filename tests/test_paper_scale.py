"""Smoke test: the literal Table II configuration runs end-to-end.

The full-size geometry is too slow for real workloads in pure Python,
but it must stay functional — users who want fidelity over speed run it.
"""

from repro.core import NVOverlay, NVOverlayParams, SnapshotReader, golden_image
from repro.sim import Machine, SystemConfig

from tests.util import RandomWorkload


def test_paper_scale_machine_runs_and_recovers():
    config = SystemConfig.paper_scale().with_changes(epoch_size_stores=2000)
    scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    machine = Machine(config, scheme=scheme, capture_store_log=True)
    machine.run(RandomWorkload(num_threads=16, txns_per_thread=150, seed=4))
    image = SnapshotReader(scheme.cluster).recover()
    assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)
    # Full-size caches: this little run never spills an L2.
    assert machine.stats.get("l2.evictions") == 0


def test_paper_scale_16_banks_and_latencies():
    config = SystemConfig.paper_scale()
    machine = Machine(config)
    assert machine.nvm.num_banks == 16
    assert machine.nvm.write_latency == 400
    assert machine.dram.num_controllers == 4
