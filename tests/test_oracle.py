"""Tests for the protocol invariant oracle (``repro.oracle``).

Two halves: clean armed runs over real workload/scheme pairs must pass
every online checker, and *mutation* tests — deliberately corrupting
protocol state the way a real bug would — must make the matching
checker fire with a non-empty preceding-event window.
"""

import json

import pytest

from repro.harness.runner import make_scheme
from repro.oracle import (
    EVENT_KINDS,
    InvariantViolation,
    ProtocolOracle,
    TraceBuffer,
    format_window,
)
from repro.sim import MESI, Machine, SystemConfig
from repro.workloads import make_workload

SMALL = SystemConfig(num_cores=4, cores_per_vd=2, epoch_size_stores=400)


def run_armed(workload: str, scheme: str, scale: float = 0.05, seed: int = 1):
    """One small armed run; returns (machine, oracle) post-finalize."""
    oracle = ProtocolOracle(scan_interval=8)
    machine = Machine(SMALL, scheme=make_scheme(scheme), oracle=oracle)
    wl = make_workload(workload, num_threads=SMALL.num_cores, scale=scale,
                       seed=seed)
    machine.run(wl)
    return machine, oracle


class TestTraceBuffer:
    def test_ring_bounds_memory_but_counts_everything(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.emit("store", cycle=i, line=i)
        assert len(buf) == 4
        assert buf.total_events == 10
        assert buf.counts == {"store": 10}
        # Ring keeps the newest events, sequence numbers keep counting.
        assert [e.seq for e in buf] == [6, 7, 8, 9]

    def test_window_is_oldest_first_suffix(self):
        buf = TraceBuffer(capacity=8)
        for i in range(6):
            buf.emit("eviction", cycle=i)
        window = buf.window(3)
        assert [e.seq for e in window] == [3, 4, 5]
        assert buf.window(100) == list(buf)
        assert buf.window(0) == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_export_jsonl_round_trips(self, tmp_path):
        buf = TraceBuffer()
        buf.emit("writeback", cycle=7, vd=1, line=0x40, oid=3)
        buf.emit("rec_epoch", cycle=9, old=0, new=2)
        path = tmp_path / "events.jsonl"
        assert buf.export_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {"seq": 0, "cycle": 7, "kind": "writeback",
                           "vd": 1, "line": 0x40, "oid": 3}
        assert rows[1]["kind"] == "rec_epoch"

    def test_format_window(self):
        assert "no events" in format_window([])
        buf = TraceBuffer()
        event = buf.emit("merge", cycle=3, omc=0, through=5)
        rendered = format_window([event])
        assert "merge" in rendered and "through=5" in rendered


@pytest.mark.parametrize("workload", ["uniform", "btree", "ycsb_a"])
@pytest.mark.parametrize("scheme", ["nvoverlay", "picl"])
class TestCleanRuns:
    def test_armed_run_passes_all_invariants(self, workload, scheme):
        machine, oracle = run_armed(workload, scheme)
        summary = oracle.summary()
        assert summary["events"] > 0
        assert summary["scans"] > 0  # periodic + finalize scans ran
        assert summary["counts"]["store"] > 0
        if scheme == "nvoverlay":
            # The versioned protocol emits its whole event vocabulary.
            assert summary["counts"]["writeback"] > 0
            assert summary["counts"]["walker_pass"] > 0
            assert summary["counts"]["rec_epoch"] > 0
        assert set(summary["counts"]) <= set(EVENT_KINDS)


class TestMutations:
    """Corrupt protocol state the way a bug would; the checker must fire."""

    def _assert_violation(self, exc: InvariantViolation, invariant: str):
        assert exc.invariant == invariant
        assert exc.events, "violation must carry its preceding event window"
        assert invariant in str(exc)

    def test_flipped_mesi_state_fires_single_writer(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        hierarchy = machine.hierarchy
        vd_a, vd_b = hierarchy.vds[0], hierarchy.vds[1]
        l2_a, l2_b = vd_a.l2, vd_b.l2
        # The bug: two VDs both believe they own the same line in M.
        entry = next(e for s in l2_a._sets for e in s.values())
        entry.state = MESI.M
        entry.oid = max(entry.oid, 1)
        if l2_b.probe(entry.line) is None:
            # Make room without tripping inclusion: evict a victim no
            # L1 under VD b still holds.
            l1_lines = {
                e.line
                for core in vd_b.core_ids
                for s in hierarchy.l1s[core]._sets
                for e in s.values()
            }
            target_set = l2_b._sets[entry.line % l2_b._num_sets]
            if len(target_set) >= l2_b._ways:
                victim = next(l for l in target_set if l not in l1_lines)
                del target_set[victim]
        l2_b.insert(entry.line, MESI.M, max(entry.oid, 1), 42)
        with pytest.raises(InvariantViolation) as excinfo:
            oracle.check_now()
        self._assert_violation(excinfo.value, "single-writer")

    def test_skipped_min_ver_report_fires_rec_frontier(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        hierarchy = machine.hierarchy
        cluster = machine.scheme.cluster
        # The bug: a dirty version at epoch 1 that no walker ever saw...
        hierarchy.vds[0].l2.insert(0x777, MESI.M, 1, 99)
        # ...while every walker reports an inflated min-ver, letting the
        # recoverable epoch advance over still-dirty on-chip state.
        target = cluster.rec_epoch + 5
        with pytest.raises(InvariantViolation) as excinfo:
            for vd in hierarchy.vds:
                cluster.update_min_ver(vd.id, target, now=0)
        self._assert_violation(excinfo.value, "rec-frontier")

    def test_reordered_writeback_fires_writeback_epoch(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        hierarchy = machine.hierarchy
        vd = hierarchy.vds[0]
        # The bug: a write-back tagged with an epoch the VD has not
        # reached — version order crossed an epoch boundary.
        with pytest.raises(InvariantViolation) as excinfo:
            hierarchy._version_writeback(
                vd, 0x555, 7, vd.cur_epoch + 5, "capacity", False, 0
            )
        self._assert_violation(excinfo.value, "writeback-epoch")

    def test_epoch_regression_fires_epoch_monotonic(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        vd = machine.hierarchy.vds[0]
        with pytest.raises(InvariantViolation) as excinfo:
            oracle.on_epoch_advance(vd, vd.cur_epoch, vd.cur_epoch, now=0)
        self._assert_violation(excinfo.value, "epoch-monotonic")

    def test_epoch_skew_fires_at_half_space(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        vd = machine.hierarchy.vds[0]
        cur = oracle._vd_epochs[vd.id]
        with pytest.raises(InvariantViolation) as excinfo:
            oracle.on_epoch_advance(vd, cur, cur + oracle._half, now=0)
        self._assert_violation(excinfo.value, "epoch-skew")

    def test_inflated_walker_report_fires_min_ver_report(self):
        machine, oracle = run_armed("uniform", "nvoverlay")
        vd = machine.hierarchy.vds[0]
        with pytest.raises(InvariantViolation) as excinfo:
            oracle.on_walker_pass(vd.id, vd.cur_epoch + 10, now=0)
        self._assert_violation(excinfo.value, "min-ver-report")


class TestRunnerIntegration:
    def test_record_carries_oracle_extras(self):
        from repro.harness.runner import simulate
        from repro.harness.spec import RunSpec

        record = simulate(RunSpec(workload="uniform", scheme="nvoverlay",
                                  config=SMALL, scale=0.05, oracle=True))
        assert record.extra["oracle_events"] > 0
        assert record.extra["oracle_scans"] > 0
