"""Tests for the battery-backed OMC write-back buffer (§IV-E)."""

from repro.core import OMCBuffer
from repro.sim import CacheGeometry, Stats


class Sink:
    """Records flushed versions."""

    def __init__(self):
        self.flushed = []

    def __call__(self, line, oid, data, now):
        self.flushed.append((line, oid, data))


def make_buffer(size=512, ways=2):
    sink = Sink()
    return OMCBuffer(CacheGeometry(size, ways, 1), Stats(), sink), sink


class TestCoalescing:
    def test_same_epoch_rewrite_hits(self):
        buffer, sink = make_buffer()
        buffer.insert(5, oid=1, data=10, now=0)
        buffer.insert(5, oid=1, data=11, now=0)
        assert sink.flushed == []
        assert buffer.stats.get("omc_buffer.hits") == 1
        assert buffer.hit_rate() == 0.5

    def test_new_epoch_flushes_old_version(self):
        buffer, sink = make_buffer()
        buffer.insert(5, oid=1, data=10, now=0)
        buffer.insert(5, oid=2, data=20, now=0)
        assert sink.flushed == [(5, 1, 10)]
        assert buffer.occupancy() == 1

    def test_capacity_eviction_flushes_victim(self):
        buffer, sink = make_buffer(size=128, ways=1)  # 2 sets of 1 way
        sets = buffer.array.geometry.num_sets
        buffer.insert(0, 1, 10, 0)
        buffer.insert(sets, 1, 20, 0)  # same set, evicts line 0
        assert sink.flushed == [(0, 1, 10)]


class TestFlushes:
    def test_flush_epochs_through(self):
        buffer, sink = make_buffer()
        buffer.insert(1, oid=1, data=10, now=0)
        buffer.insert(2, oid=2, data=20, now=0)
        buffer.insert(3, oid=3, data=30, now=0)
        flushed = buffer.flush_epochs_through(2, 0)
        assert flushed == 2
        assert sorted(sink.flushed) == [(1, 1, 10), (2, 2, 20)]
        assert buffer.occupancy() == 1

    def test_flush_all(self):
        buffer, sink = make_buffer()
        buffer.insert(1, 1, 10, 0)
        buffer.insert(2, 1, 20, 0)
        assert buffer.flush_all(0) == 2
        assert buffer.occupancy() == 0
        assert len(sink.flushed) == 2

    def test_hit_rate_zero_when_empty(self):
        buffer, _sink = make_buffer()
        assert buffer.hit_rate() == 0.0
