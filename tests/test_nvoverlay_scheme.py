"""End-to-end tests for the assembled NVOverlay scheme."""

import pytest

from repro.core import (
    EpochSkewError,
    NVOverlay,
    NVOverlayParams,
    SnapshotReader,
    golden_image,
)
from repro.sim import Machine, store

from tests.util import RandomWorkload, check_hierarchy_invariants, tiny_config


class TestLifecycle:
    def test_requires_attach_before_hooks(self):
        scheme = NVOverlay()
        assert scheme.cluster is None

    def test_attach_builds_per_vd_walkers(self):
        scheme = NVOverlay()
        machine = Machine(tiny_config(), scheme=scheme)
        assert len(scheme.walkers) == machine.config.num_vds

    def test_buffer_defaults_to_llc_geometry(self):
        scheme = NVOverlay(NVOverlayParams(use_omc_buffer=True))
        machine = Machine(tiny_config(), scheme=scheme)
        buffer = scheme.cluster.omcs[0].buffer
        assert buffer is not None
        assert (
            buffer.array.geometry.size_bytes
            == machine.config.llc_geometry.size_bytes
        )

    def test_finalize_makes_everything_recoverable(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(), scheme=scheme, capture_store_log=True)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=150))
        final = max(vd.cur_epoch for vd in machine.hierarchy.vds)
        assert scheme.rec_epoch() == final - 1


class TestEndToEnd:
    def test_heavy_sharing_consistency(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=2))
        machine = Machine(tiny_config(), scheme=scheme, capture_store_log=True)
        machine.run(
            RandomWorkload(
                num_threads=4, txns_per_thread=400, shared_fraction=0.8, seed=21
            )
        )
        check_hierarchy_invariants(machine.hierarchy)
        image = SnapshotReader(scheme.cluster).recover()
        assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)

    def test_context_bytes_accounted(self):
        scheme = NVOverlay()
        machine = Machine(tiny_config(epoch_size_stores=64), scheme=scheme)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=200))
        assert machine.nvm.bytes_written("context") > 0

    def test_epoch_advance_stalls_vd(self):
        scheme = NVOverlay()
        machine = Machine(tiny_config(epoch_size_stores=64), scheme=scheme)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=200))
        assert machine.stats.get("epoch.advances") > 2

    def test_with_omc_buffer_consistency(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1, use_omc_buffer=True))
        machine = Machine(tiny_config(), scheme=scheme, capture_store_log=True)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=300, seed=4))
        image = SnapshotReader(scheme.cluster).recover()
        assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)

    def test_buffer_reduces_nvm_data_writes(self):
        def run(use_buffer):
            scheme = NVOverlay(
                NVOverlayParams(num_omcs=1, use_omc_buffer=use_buffer)
            )
            machine = Machine(
                tiny_config(epoch_size_stores=1 << 40), scheme=scheme
            )
            machine.run(
                RandomWorkload(
                    num_threads=4, txns_per_thread=400, footprint=1 << 12, seed=6
                )
            )
            return machine.stats.get("nvm.writes.data")

        assert run(True) < run(False)

    def test_multi_omc_matches_single_omc_image(self):
        images = []
        for num_omcs in (1, 3):
            scheme = NVOverlay(NVOverlayParams(num_omcs=num_omcs))
            machine = Machine(tiny_config(), scheme=scheme, capture_store_log=True)
            machine.run(RandomWorkload(num_threads=4, txns_per_thread=250, seed=13))
            images.append(SnapshotReader(scheme.cluster).recover().lines)
        assert images[0] == images[1]


class TestEpochWrapAround:
    def test_tiny_epoch_space_wraps_cleanly(self):
        """With 6-bit epochs the run crosses several group boundaries."""
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(
            tiny_config(epoch_bits=6, epoch_size_stores=32),
            scheme=scheme,
            capture_store_log=True,
        )
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=400, seed=3))
        assert scheme.sense is not None
        assert scheme.sense.flips >= 1
        image = SnapshotReader(scheme.cluster).recover()
        assert image.lines == golden_image(machine.hierarchy.store_log, image.epoch)

    def test_skew_error_when_walker_cannot_keep_up(self):
        """Extreme skew beyond half the epoch space must be detected, not
        silently corrupt wire ordering."""
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(epoch_bits=4), scheme=scheme)
        hierarchy = machine.hierarchy

        class W:
            num_threads = 3

            def transactions(self, tid):
                if tid == 0:
                    for epoch in range(2, 12):
                        hierarchy.advance_epoch(hierarchy.vds[0], epoch, 0)
                        yield [store(0x4000)]

        with pytest.raises(EpochSkewError):
            machine.run(W())


class TestIntrospection:
    def test_metadata_accessors(self):
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(tiny_config(), scheme=scheme)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=100))
        assert scheme.mapped_working_set_bytes() > 0
        assert scheme.master_metadata_bytes() > 0
        assert scheme.rec_epoch() > 0
