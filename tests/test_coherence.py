"""Tests for the baseline MESI hierarchy (no version protocol).

Scenarios use a 4-core / 2-VD machine and scripted op sequences; data
correctness is checked through the store-token mechanism (each store
writes a unique token, loads must observe the newest one).
"""

import pytest

from repro.sim import MESI, Machine, NoSnapshot, load, store

from tests.util import (
    RandomWorkload,
    ScriptedWorkload,
    check_hierarchy_invariants,
    final_image_matches_stores,
    tiny_config,
)


def run_script(scripts, **config_overrides):
    machine = Machine(tiny_config(**config_overrides), capture_store_log=True)
    machine.run(ScriptedWorkload(scripts))
    return machine


ADDR = 0x4000  # arbitrary shared address
PRIV = 0x9000_0000


class TestSingleCore:
    def test_load_miss_then_hit(self):
        machine = run_script([[[load(ADDR)], [load(ADDR)]]])
        assert machine.stats.get("l1.load_misses") == 1
        assert machine.stats.get("l1.load_hits") == 1

    def test_store_then_load_returns_token(self):
        machine = run_script([[[store(ADDR)], [load(ADDR)]]])
        entry = machine.hierarchy.l1s[0].lookup(ADDR >> 6)
        assert entry.state == MESI.M
        line, _epoch, token, _vd, _core = machine.hierarchy.store_log[0]
        assert entry.data == token

    def test_exclusive_load_gets_e_state(self):
        machine = run_script([[[load(ADDR)]]])
        entry = machine.hierarchy.l1s[0].lookup(ADDR >> 6)
        assert entry.state == MESI.E

    def test_silent_e_to_m_upgrade(self):
        machine = run_script([[[load(ADDR)], [store(ADDR)]]])
        # The store must not go to the directory again.
        assert machine.stats.get("l1.store_hits") == 1

    def test_multi_line_op_touches_every_line(self):
        machine = run_script([[[store(ADDR, 256)]]])
        for offset in range(0, 256, 64):
            assert machine.hierarchy.l1s[0].contains((ADDR + offset) >> 6)


class TestIntraVD:
    """Cores 0 and 1 share VD 0 (inclusive shared L2)."""

    def test_peer_load_after_store_sees_data(self):
        machine = run_script([
            [[store(ADDR)]],
            [[load(ADDR)]],
        ])
        token = machine.hierarchy.store_log[0][2]
        entry = machine.hierarchy.l1s[1].lookup(ADDR >> 6)
        assert entry is not None and entry.data == token

    def test_peer_dirty_copy_downgraded_on_load(self):
        machine = run_script([
            [[store(ADDR)]],
            [[load(ADDR)]],
        ])
        writer = machine.hierarchy.l1s[0].lookup(ADDR >> 6, touch=False)
        assert writer.state == MESI.S

    def test_peer_invalidated_on_store(self):
        machine = run_script([
            [[store(ADDR)]],
            [[store(ADDR)]],
        ])
        writer = machine.hierarchy.l1s[0].lookup(ADDR >> 6, touch=False)
        assert writer is None
        assert machine.hierarchy.l1s[1].lookup(ADDR >> 6).state == MESI.M

    def test_l2_serves_without_directory(self):
        machine = run_script([
            [[load(ADDR)], [load(ADDR + 8)]],
            [[load(ADDR)]],
        ])
        # Second thread's load hits the shared L2 (one directory access
        # for the initial fill only).
        slice_id = machine.hierarchy.slice_of(ADDR >> 6)
        assert machine.stats.get(f"llc.{slice_id}.dir_accesses") == 1


class TestInterVD:
    """Cores 0/1 are VD 0; cores 2/3 are VD 1."""

    def test_remote_dirty_line_forwarded_on_load(self):
        machine = run_script([
            [[store(ADDR)]],
            [],
            [[load(ADDR)]],
        ])
        token = machine.hierarchy.store_log[0][2]
        reader = machine.hierarchy.l1s[2].lookup(ADDR >> 6)
        assert reader.data == token
        # Owner was downgraded to shared.
        owner_l2 = machine.hierarchy.vds[0].l2.lookup(ADDR >> 6, touch=False)
        assert owner_l2.state == MESI.S

    def test_remote_dirty_line_transferred_on_store(self):
        machine = run_script([
            [[store(ADDR)]],
            [],
            [[store(ADDR)]],
        ])
        assert machine.stats.get("coh.c2c_transfers") == 1
        # Old owner fully invalidated.
        assert machine.hierarchy.vds[0].l2.lookup(ADDR >> 6, touch=False) is None
        assert machine.hierarchy.l1s[0].lookup(ADDR >> 6, touch=False) is None

    def test_sharers_invalidated_on_store(self):
        machine = run_script([
            [[load(ADDR)], [store(ADDR)]],
            [],
            [[load(ADDR)]],
        ])
        # Directory ends with VD0 as owner and VD1 holding nothing valid.
        dentry = machine.hierarchy.dir_entry(ADDR >> 6)
        assert dentry.owner == 0
        assert dentry.sharers == set()

    def test_last_writer_wins_global(self):
        machine = run_script([
            [[store(ADDR)]],
            [],
            [[store(ADDR)]],
            [[store(ADDR)]],
        ])
        mismatches, total = final_image_matches_stores(machine)
        assert mismatches == 0 and total == 1


class TestEvictions:
    def test_capacity_eviction_reaches_memory(self):
        # Touch far more lines than L1+L2 can hold; memory must end with
        # the final token of every line.
        ops = [[store(PRIV + i * 64)] for i in range(400)]
        machine = run_script([ops])
        machine.hierarchy.flush_all(0)
        mismatches, total = final_image_matches_stores(machine)
        assert total == 400
        assert mismatches == 0

    def test_llc_holds_recent_victims(self):
        ops = [[store(PRIV + i * 64)] for i in range(200)]
        machine = run_script([ops])
        assert machine.stats.get("l2.evictions") > 0
        llc_lines = sum(len(array) for array in machine.hierarchy.llc)
        assert llc_lines > 0

    def test_invariants_after_random_run(self):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(RandomWorkload(num_threads=4, txns_per_thread=200, seed=3))
        check_hierarchy_invariants(machine.hierarchy)
        mismatches, _total = final_image_matches_stores(machine)
        assert mismatches == 0


class TestRandomizedCoherence:
    @pytest.mark.parametrize("seed", range(6))
    def test_token_consistency_across_seeds(self, seed):
        machine = Machine(tiny_config(), capture_store_log=True)
        machine.run(
            RandomWorkload(
                num_threads=4, txns_per_thread=250, shared_fraction=0.5, seed=seed
            )
        )
        mismatches, total = final_image_matches_stores(machine)
        assert mismatches == 0
        assert total > 0
        check_hierarchy_invariants(machine.hierarchy)

    def test_loads_always_see_latest_store(self):
        """Interleaved store/load pairs on one hot line across VDs."""
        hot = 0x7777_0000
        scripts = [
            [[store(hot)], [load(hot)]] * 20,
            [[load(hot)], [store(hot)]] * 20,
            [[store(hot)], [store(hot)]] * 20,
            [[load(hot)]] * 40,
        ]
        machine = run_script(scripts)
        mismatches, total = final_image_matches_stores(machine)
        assert mismatches == 0 and total == 1
