"""End-to-end tests for dynamic epoch policies and PiCL re-logging."""

from repro.baselines import PiCL, PiCLL2
from repro.core import NVOverlay, NVOverlayParams
from repro.sim import Machine, store
from repro.sim.config import BurstyEpochPolicy

from tests.util import RandomWorkload, ScriptedWorkload, tiny_config


class TestBurstyEpochs:
    def test_nvoverlay_captures_more_epochs_in_burst_window(self):
        # 400 stores total; stores 100..200 use epochs of 8 instead of 200.
        policy = BurstyEpochPolicy(base_size=200, bursts=((100, 200, 8),))
        config = tiny_config(epoch_policy=policy)
        scheme = NVOverlay(NVOverlayParams(num_omcs=1))
        machine = Machine(config, scheme=scheme)
        ops = [[store(0x4000 + 64 * (i % 64))] for i in range(400)]
        machine.run(ScriptedWorkload([ops]))
        # Base policy alone would give ~2-3 epochs; the burst adds ~12.
        assert machine.stats.get("epoch.advances") >= 8

    def test_picl_epochs_follow_policy_too(self):
        policy = BurstyEpochPolicy(base_size=200, bursts=((100, 200, 10),))
        config = tiny_config(epoch_policy=policy)
        scheme = PiCL()
        machine = Machine(config, scheme=scheme)
        ops = [[store(0x4000 + 64 * (i % 64))] for i in range(400)]
        machine.run(ScriptedWorkload([ops]))
        assert scheme.epoch > 8

    def test_bursts_increase_log_traffic_for_picl(self):
        def run(policy):
            config = tiny_config(epoch_policy=policy)
            machine = Machine(config, scheme=PiCL())
            machine.run(
                RandomWorkload(num_threads=4, txns_per_thread=200, seed=5)
            )
            return machine.nvm.bytes_written("log")

        steady = run(BurstyEpochPolicy(base_size=400, bursts=()))
        bursty = run(BurstyEpochPolicy(base_size=400, bursts=((200, 1400, 20),)))
        assert bursty > steady


class TestPiCLRelogging:
    def test_domain_exit_forces_relog(self):
        """A line that leaves the tracked domain mid-epoch is logged again
        on its next write — PiCL-L2's extra log traffic (§VII-A)."""
        scheme = PiCLL2()
        machine = Machine(tiny_config(epoch_size_stores=1 << 30), scheme=scheme)
        hierarchy = machine.hierarchy
        line_addr = 0x4000

        class W:
            num_threads = 1

            def transactions(self, tid):
                yield [store(line_addr)]
                # Force the line out of the L2 domain.
                vd = hierarchy.vds[0]
                entry = vd.l2.lookup(line_addr >> 6, touch=False)
                assert entry is not None
                hierarchy._evict_l2_entry(vd, entry, "capacity", 0)
                yield [store(line_addr)]  # same epoch: must re-log

        machine.run(W())
        assert machine.stats.get("nvm.writes.log") == 2

    def test_no_relog_without_domain_exit(self):
        scheme = PiCLL2()
        machine = Machine(tiny_config(epoch_size_stores=1 << 30), scheme=scheme)
        machine.run(ScriptedWorkload([[[store(0x4000)], [store(0x4000)]]]))
        assert machine.stats.get("nvm.writes.log") == 1
