"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "btree"
        assert args.scheme == "nvoverlay"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])

    def test_experiment_names(self):
        args = build_parser().parse_args(["experiment", "fig13"])
        assert args.name == "fig13"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_workloads_lists_names(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "btree" in out and "kmeans" in out

    def test_run_prints_stats(self, capsys):
        assert main([
            "run", "--workload", "uniform", "--scheme", "picl", "--scale", "0.02",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "nvm bytes" in out

    def test_run_nvoverlay_extras(self, capsys):
        assert main([
            "run", "--workload", "uniform", "--scale", "0.02",
        ]) == 0
        assert "rec_epoch" in capsys.readouterr().out

    def test_compare_prints_table(self, capsys):
        assert main(["compare", "--workload", "uniform", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "nvoverlay" in out and "norm_cycles" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "nvoverlay" in capsys.readouterr().out

    def test_experiment_fig13(self, capsys):
        assert main(["experiment", "fig13", "--scale", "0.02"]) == 0
        assert "pct_of_ws" in capsys.readouterr().out

    def test_experiment_fig14(self, capsys):
        assert main(["experiment", "fig14", "--scale", "0.02"]) == 0
        assert "epoch=" in capsys.readouterr().out

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "with_walker" in out and "tag_walk" in out

    def test_experiment_fig16(self, capsys):
        assert main(["experiment", "fig16", "--scale", "0.05"]) == 0
        assert "buffer" in capsys.readouterr().out

    def test_experiment_fig17_bursty(self, capsys):
        assert main(["experiment", "fig17", "--scale", "0.02", "--bursty"]) == 0
        assert "Fig. 17b" in capsys.readouterr().out

    def test_trace_capture(self, tmp_path, capsys):
        out_file = tmp_path / "u.trace"
        assert main([
            "trace", "--workload", "uniform", "--scale", "0.02",
            "--threads", "2", "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
