#!/usr/bin/env python3
"""Time-travel debugging over high-frequency snapshots (usage model #1).

The paper motivates NVOverlay with record-and-replay debugging: capture
snapshots around a suspicious region ("watch points") and inspect any
address at any captured moment afterwards.

This example plants a bug: 16 threads concurrently push work into a
shared hash table, and somewhere mid-run a "corrupting" thread stomps a
counter line with a wrong value before fixing it later.  At the end the
final state looks healthy — only the snapshot history reveals when the
corruption happened.  We:

1. run with very short epochs around the suspicious window (the bursty
   debugging pattern of Fig. 17b);
2. open epoch-pinned *snapshot sessions* (``repro.serve``) and scan the
   epoch history with time-travel reads to find the first snapshot where
   the watched line held the bad value — each session is an O(1)
   point-in-time read view whose pin keeps GC from reclaiming the epochs
   it is inspecting.

Run:  python examples/time_travel_debugging.py
"""

from repro import Machine, NVOverlay, NVOverlayParams, SnapshotReader, SystemConfig
from repro.serve import SessionManager
from repro.sim.config import BurstyEpochPolicy
from repro.workloads import AddressSpace, HashTable, MemView, Workload


class BuggyWorkload(Workload):
    """Hash-table inserts plus one thread that corrupts a counter."""

    def __init__(self, num_threads: int = 16, inserts: int = 300) -> None:
        super().__init__(num_threads)
        space = AddressSpace()
        self.table = HashTable(space.region())
        self.counter = space.region().alloc(64, align=64)
        self.inserts = inserts
        #: (thread, txn index) at which corruption happens / gets fixed.
        self.corrupt_at = inserts // 2
        self.fix_at = self.corrupt_at + 40

    def transactions(self, thread_id: int):
        import random

        rng = random.Random(thread_id * 977)
        view = MemView()
        for index in range(self.inserts):
            self.table.insert(rng.getrandbits(24), index, view)
            if thread_id == 7 and index in (self.corrupt_at, self.fix_at):
                view.read(self.counter, 8)
                view.write(self.counter, 8)  # the stomp (and the fix)
            yield view.take()


def main() -> None:
    workload = BuggyWorkload()
    # Short epochs around the middle of the run: the debugging burst.
    total_stores_estimate = 16 * workload.inserts * 6
    policy = BurstyEpochPolicy(
        base_size=8000,
        bursts=((total_stores_estimate // 3, 2 * total_stores_estimate // 3, 400),),
    )
    config = SystemConfig(epoch_policy=policy)
    scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    machine = Machine(config, scheme=scheme, capture_store_log=True)

    print("running buggy workload with bursty snapshot epochs ...")
    machine.run(workload)
    reader = SnapshotReader(scheme.cluster)
    final_epoch = reader.recover().epoch
    print(f"  captured {final_epoch} snapshots")

    # The counter was written twice by thread 7; in the store log, each
    # write produced a distinct token.  Treat the first stomp's token as
    # "the bad value" and find the snapshot where it first appears.
    line = workload.counter >> 6
    writes = [
        (epoch, token)
        for l, epoch, token, _vd, _core in machine.hierarchy.store_log
        if l == line
    ]
    assert len(writes) == 2, "expected exactly stomp + fix"
    bad_token = writes[0][1]

    # The watch-point primitive: which snapshots contain versions of the
    # counter at all?
    touched = reader.epochs_touching(workload.counter)
    print(f"  watch point versioned in snapshots {touched}")
    first_write_epoch = touched[0]
    print(f"  watch point first dirtied in snapshot {first_write_epoch}")
    print(f"  stomp recorded in epoch {writes[0][0]}, fix in epoch {writes[1][0]}")
    assert first_write_epoch == writes[0][0]

    # Debugging is served through snapshot sessions: each acquire() is an
    # O(1) pin of one epoch — no copying, no table scan — and while the
    # session is open, version GC will not reclaim that epoch's state.
    manager = SessionManager(scheme.cluster)

    def holds_bad_value(epoch: int) -> bool:
        with manager.acquire(epoch=epoch) as session:
            result = session.read(workload.counter)
            return result is not None and result[0] == bad_token

    stomped = [e for e in range(1, final_epoch + 1) if holds_bad_value(e)]
    print(f"  corrupted value visible in snapshots "
          f"{stomped[0]}..{stomped[-1]} ({len(stomped)} epochs)")

    # A long-lived inspection session survives GC: pin the stomp epoch,
    # reclaim everything unpinned, and the pinned view still answers.
    with manager.acquire(epoch=stomped[0]) as session:
        scheme.cluster.reclaim(0)
        result = session.read(workload.counter)
        assert result is not None and result[0] == bad_token
        print(f"  pinned session at snapshot {stomped[0]} still reads the "
              f"stomped value after GC (staleness {session.staleness()} epochs)")
    assert manager.reads == final_epoch + 1
    print("time travel pinpointed the corruption window: OK")


if __name__ == "__main__":
    main()
