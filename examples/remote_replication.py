#!/usr/bin/env python3
"""Fine-grained backup & replication of snapshot deltas (usage model #3).

Per-epoch snapshots are *incremental*: each epoch table maps exactly the
lines that changed.  A replication transport can therefore ship one
epoch's delta at a time and replay it on a backup machine as a redo
stream (§V-E "Remote Replication").

This example runs a primary under NVOverlay, ships every epoch delta to
a simulated backup, and verifies the backup converges to the primary's
recoverable image — plus reports how many bytes replication shipped
versus a naive full-image copy per epoch.

Run:  python examples/remote_replication.py
"""

from repro import (
    Machine,
    NVOverlay,
    NVOverlayParams,
    SnapshotReader,
    SystemConfig,
    make_workload,
)
from repro.core import replay_delta


def main() -> None:
    # Short epochs: ship small, frequent deltas (high-frequency backup).
    config = SystemConfig(epoch_size_stores=2500)
    scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    machine = Machine(config, scheme=scheme, capture_store_log=True)

    print("running primary (ART bulk insert) ...")
    machine.run(make_workload("art", num_threads=16, scale=0.3))
    reader = SnapshotReader(scheme.cluster)
    final_epoch = reader.recover().epoch

    backup: dict = {}
    shipped_bytes = 0
    full_copy_bytes = 0
    for epoch in range(1, final_epoch + 1):
        delta = reader.export_epoch(epoch)
        backup = replay_delta(backup, delta)
        shipped_bytes += len(delta) * 64
        full_copy_bytes += len(backup) * 64

    primary_image = reader.recover().lines
    status = "OK" if backup == primary_image else "MISMATCH"
    print(f"  epochs replicated:        {final_epoch}")
    print(f"  backup image lines:       {len(backup)} ... {status}")
    print(f"  delta bytes shipped:      {shipped_bytes:,}")
    print(f"  naive full-copy bytes:    {full_copy_bytes:,}")
    print(f"  incremental savings:      "
          f"{(1 - shipped_bytes / max(full_copy_bytes, 1)) * 100:.1f}%")

    if backup != primary_image:
        raise SystemExit("replication diverged from the primary")


if __name__ == "__main__":
    main()
