#!/usr/bin/env python3
"""NVOverlay under YCSB service mixes (beyond the paper's insert-only runs).

The paper evaluates bulk insertion; a serving system sees reads.  This
example runs the YCSB mixes over a shared B+Tree and shows where
snapshotting costs anything at all: read-only traffic (mix C) generates
no versions, update-heavy traffic (A/F) exercises the full CST pipeline.

Run:  python examples/ycsb_mixes.py [scale]
"""

import sys

from repro import Machine, NVOverlay, NVOverlayParams, SystemConfig, make_workload
from repro.harness import report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    rows = {}
    for mix in ("a", "b", "c", "d", "e", "f"):
        name = f"ycsb_{mix}"
        ideal = Machine(SystemConfig()).run(
            make_workload(name, num_threads=16, scale=scale)
        )
        scheme = NVOverlay(NVOverlayParams(num_omcs=2))
        machine = Machine(SystemConfig(), scheme=scheme)
        result = machine.run(make_workload(name, num_threads=16, scale=scale))
        rows[f"YCSB-{mix.upper()}"] = {
            "norm_cycles": result.cycles / max(ideal.cycles, 1),
            "nvm_kb": result.nvm_bytes() / 1024,
            "versions": machine.stats.get("cst.version_writebacks"),
            "snapshots": scheme.rec_epoch(),
        }
    print(report.format_table(
        "NVOverlay across YCSB mixes (B+Tree, 16 threads)",
        ["norm_cycles", "nvm_kb", "versions", "snapshots"],
        rows,
    ))
    print("\nread-only traffic (C) snapshots for free; "
          "update-heavy mixes (A/F) pay only background write-backs.")


if __name__ == "__main__":
    main()
