#!/usr/bin/env python3
"""Compare all six snapshotting designs on one workload.

A miniature of the paper's Figs. 11 and 12: pick a workload, run every
scheme (plus the ideal no-snapshot baseline), and print normalized
cycles and NVM write bytes side by side.

Run:  python examples/scheme_shootout.py [workload] [scale]
      e.g. python examples/scheme_shootout.py kmeans 0.5
"""

import sys

from repro import RunSpec, compare
from repro.harness import report
from repro.workloads import workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "btree"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if workload not in workload_names():
        raise SystemExit(f"unknown workload {workload!r}; try: "
                         + ", ".join(workload_names()))

    print(f"comparing schemes on {workload!r} (scale {scale}) ...")
    records = compare(RunSpec(workload=workload, scheme="ideal", scale=scale))

    rows = {}
    for name, record in records.items():
        if name == "ideal":
            continue
        rows[name] = {
            "norm_cycles": record.extra["normalized_cycles"],
            "norm_bytes": record.extra.get("normalized_write_bytes", 0.0),
            "nvm_mb": record.total_nvm_bytes / 1e6,
        }
    print()
    print(report.format_table(
        f"{workload}: cycles vs ideal, bytes vs NVOverlay",
        ["norm_cycles", "norm_bytes", "nvm_mb"],
        rows,
    ))
    print()
    nvo = records["nvoverlay"]
    print(f"NVOverlay evict reasons: {nvo.evict_reasons}")


if __name__ == "__main__":
    main()
