#!/usr/bin/env python3
"""Quickstart: snapshot a workload with NVOverlay and recover it.

Builds a 16-core machine with NVOverlay attached, bulk-inserts random
keys into a shared B+Tree (the paper's BTreeOLC workload), then:

1. prints the run's headline statistics,
2. performs crash recovery from the Master Table and verifies the
   recovered image against the simulator's golden store log,
3. does a couple of time-travel reads into mid-run snapshots.

Run:  python examples/quickstart.py
"""

from repro import (
    Machine,
    NVOverlay,
    NVOverlayParams,
    SnapshotReader,
    SystemConfig,
    golden_image,
    make_workload,
)


def main() -> None:
    config = SystemConfig()  # Table II, scaled (see DESIGN.md)
    scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    machine = Machine(config, scheme=scheme, capture_store_log=True)

    workload = make_workload("btree", num_threads=config.num_cores, scale=0.3)
    print("running 16-thread B+Tree bulk insert under NVOverlay ...")
    result = machine.run(workload)

    print(f"  cycles:              {result.cycles:,}")
    print(f"  stores:              {result.stores:,}")
    print(f"  epochs captured:     {scheme.rec_epoch()}")
    print(f"  NVM bytes (data):    {result.nvm_bytes('data'):,}")
    print(f"  NVM bytes (metadata):{result.nvm_bytes('metadata'):,}")
    print(f"  version write-backs: {machine.stats.get('cst.version_writebacks'):,}")

    # --- crash recovery (§V-E) -----------------------------------------
    reader = SnapshotReader(scheme.cluster)
    image = reader.recover()
    golden = golden_image(machine.hierarchy.store_log, image.epoch)
    status = "OK" if image.lines == golden else "MISMATCH"
    print(f"\ncrash recovery at epoch {image.epoch}: "
          f"{len(image)} lines restored ... {status}")

    # --- time travel (§V-E debugging reads) -----------------------------
    mid = max(1, image.epoch // 2)
    mid_image = reader.image_at(mid)
    mid_golden = golden_image(machine.hierarchy.store_log, mid)
    status = "OK" if mid_image == mid_golden else "MISMATCH"
    print(f"time-travel to epoch {mid}: {len(mid_image)} lines ... {status}")

    some_line = next(iter(mid_image))
    data, version_epoch = reader.read(some_line * 64, epoch=mid)
    print(f"read of line {some_line:#x} at epoch {mid}: "
          f"value written in epoch {version_epoch}")


if __name__ == "__main__":
    main()
