#!/usr/bin/env python3
"""Low-latency crash recovery (usage model #4).

Simulates a power failure in the middle of a run: the machine is simply
abandoned mid-execution (no finalize, no flushes — whatever the tag
walkers had managed to persist is all the NVM holds).  A "new machine"
then recovers:

1. read rec-epoch and rebuild the consistent image from the Master
   Table + mergeable epoch tables (§V-E);
2. verify the image is exactly the causally-consistent cut the
   coherence protocol committed at that epoch;
3. restore the recovered image into a fresh machine's memory and
   continue running — the classic resume-after-crash flow.

Run:  python examples/crash_recovery.py
"""

from repro import (
    Machine,
    NVOverlay,
    NVOverlayParams,
    SnapshotReader,
    SystemConfig,
    golden_image,
    make_workload,
)


def main() -> None:
    config = SystemConfig()
    scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    machine = Machine(config, scheme=scheme, capture_store_log=True)
    workload = make_workload("hash_table", num_threads=16, scale=0.4)

    # Run only part of the workload, then "lose power": no finalize.
    print("running... then pulling the plug mid-execution")
    machine.run(workload, max_transactions=3500)

    # ------------------------------------------------------------------
    # Recovery. Only what the OMC persisted before the crash is usable.
    # ------------------------------------------------------------------
    reader = SnapshotReader(scheme.cluster)
    image = reader.recover()
    print(f"  rec-epoch on NVM:      {image.epoch}")
    print(f"  lines recoverable:     {len(image)}")
    contexts = {vd: e for vd, e in image.context_epochs.items() if e is not None}
    print(f"  core contexts found:   {len(contexts)} VDs")

    golden = golden_image(machine.hierarchy.store_log, image.epoch)
    if image.lines == golden:
        print("  image == causally-consistent cut at rec-epoch: OK")
    else:
        missing = set(golden) - set(image.lines)
        raise SystemExit(f"RECOVERY MISMATCH: {len(missing)} lines wrong")

    # The crash necessarily lost the tail of execution — quantify it.
    total_writes = len({line for line, *_ in machine.hierarchy.store_log})
    print(f"  working set at crash:  {total_writes} lines "
          f"({total_writes - len(image)} lines of recent work lost, "
          "as expected for epochs not yet recoverable)")

    # ------------------------------------------------------------------
    # Resume: rebuild the OMC's volatile structures from NVM (§V-E),
    # load the image into a fresh machine and keep running.
    # ------------------------------------------------------------------
    restarted_cluster = scheme.cluster.cold_restart()
    print(f"\nOMC cold restart: rec-epoch {restarted_cluster.rec_epoch}, "
          f"{restarted_cluster.pages_in_use()} overlay pages rebuilt")
    fresh_scheme = NVOverlay(NVOverlayParams(num_omcs=2))
    fresh = Machine(config, scheme=fresh_scheme, capture_store_log=True)
    fresh.load_image(image.lines)
    print("resuming on a fresh machine from the recovered image ...")
    result = fresh.run(make_workload("hash_table", num_threads=16, scale=0.1, seed=99))
    print(f"  resumed run retired {result.stores:,} stores "
          f"over {result.cycles:,} cycles: OK")


if __name__ == "__main__":
    main()
